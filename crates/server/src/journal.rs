//! The per-tenant batch journal: every byte the server accepts, in
//! acceptance order, replayable offline.
//!
//! A journal is plain text built from the loader's canonical edge-line
//! form ([`render_edge_line`]) — one row per op, explicit weights — with
//! `#batch <seq>` comment markers terminating each accepted batch. Because
//! batch markers are `#` comments, [`parse_edge_line`] skips them, so a
//! journal also loads as an ordinary edge-op stream; the dedicated
//! [`parse_journal`] additionally recovers the batch boundaries, which is
//! what `saga-check`'s loadgen replays through the [`GraphOracle`] to
//! prove the server processed exactly what it admitted (DESIGN.md §13).
//!
//! [`GraphOracle`]: saga_graph::oracle::GraphOracle

use saga_stream::loader::{parse_edge_line, render_edge_line};
use saga_stream::{edge_weight, Edge, EdgeOp};
use std::fmt::Write as _;

/// One journaled batch: the ops exactly as accepted, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalBatch {
    /// Acceptance sequence number (what the `#batch` marker carries).
    pub seq: usize,
    /// The batch's ops in acceptance order.
    pub ops: Vec<(EdgeOp, Edge)>,
}

impl JournalBatch {
    /// Splits into `(inserts, deletes)` in op order — the form both the
    /// driver session and [`GraphOracle::apply_batch`] consume (inserts
    /// apply before deletes within a batch, the window semantics).
    ///
    /// [`GraphOracle::apply_batch`]: saga_graph::oracle::GraphOracle::apply_batch
    pub fn split(&self) -> (Vec<Edge>, Vec<Edge>) {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for &(op, e) in &self.ops {
            match op {
                EdgeOp::Insert => inserts.push(e),
                EdgeOp::Delete => deletes.push(e),
            }
        }
        (inserts, deletes)
    }
}

/// The replay root for a journal: the source vertex of the very first
/// journaled op. This is the same convention the tenant worker uses when
/// no explicit root was configured (and mirrors the differential
/// checker's `stream.edges.first().src` rule), so an offline replay seeds
/// BFS/SSSP/SSWP from the vertex the server did.
pub fn journal_root(batches: &[JournalBatch]) -> saga_stream::Node {
    batches
        .first()
        .and_then(|b| b.ops.first())
        .map(|&(_, e)| e.src)
        .unwrap_or(0)
}

/// Appends one batch to a journal in canonical form: one
/// [`render_edge_line`] row per op, then the `#batch` terminator.
pub fn append_batch(out: &mut String, seq: usize, ops: &[(EdgeOp, Edge)]) {
    for &(op, ref edge) in ops {
        out.push_str(&render_edge_line(edge, op));
        out.push('\n');
    }
    let _ = writeln!(out, "#batch {seq}");
}

/// Serializes batches to canonical journal text.
/// [`parse_journal`] ∘ `serialize_journal` is the identity on non-empty
/// batches (pinned by the round-trip proptest in
/// `tests/journal_roundtrip.rs`).
pub fn serialize_journal(batches: &[JournalBatch]) -> String {
    let mut out = String::new();
    for b in batches {
        append_batch(&mut out, b.seq, &b.ops);
    }
    out
}

/// Parses journal text back into batches. Accepts every op spelling
/// [`parse_edge_line`] does (`+`/`-`/`a`/`d`/fused signs, optional
/// weights — absent weights are re-derived from the endpoints with
/// `directed` sensitivity, exactly what the server does at admission).
/// Trailing rows after the last marker become a final implicit batch.
///
/// # Errors
///
/// Returns a message naming the first offending line: unparseable rows,
/// malformed `#batch` markers, or an empty batch.
pub fn parse_journal(text: &str, directed: bool) -> Result<Vec<JournalBatch>, String> {
    let mut batches = Vec::new();
    let mut ops: Vec<(EdgeOp, Edge)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("#batch") {
            let seq: usize = rest
                .trim()
                .parse()
                .map_err(|_| format!("line {}: malformed #batch marker", lineno + 1))?;
            if ops.is_empty() {
                return Err(format!("line {}: empty batch {seq}", lineno + 1));
            }
            batches.push(JournalBatch {
                seq,
                ops: std::mem::take(&mut ops),
            });
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let raw = parse_edge_line(line)
            .ok_or_else(|| format!("line {}: unparseable journal row {line:?}", lineno + 1))?;
        let (src, dst) = (raw.src as saga_stream::Node, raw.dst as saga_stream::Node);
        let weight = raw.weight.unwrap_or_else(|| edge_weight(src, dst, directed));
        ops.push((raw.op, Edge::new(src, dst, weight)));
    }
    if !ops.is_empty() {
        let seq = batches.last().map(|b: &JournalBatch| b.seq + 1).unwrap_or(0);
        batches.push(JournalBatch { seq, ops });
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<JournalBatch> {
        vec![
            JournalBatch {
                seq: 0,
                ops: vec![
                    (EdgeOp::Insert, Edge::new(0, 1, 2.5)),
                    (EdgeOp::Insert, Edge::new(1, 2, 1.0)),
                ],
            },
            JournalBatch {
                seq: 1,
                ops: vec![
                    (EdgeOp::Delete, Edge::new(0, 1, 2.5)),
                    (EdgeOp::Insert, Edge::new(2, 3, 8.875)),
                ],
            },
        ]
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let batches = sample();
        let text = serialize_journal(&batches);
        assert_eq!(parse_journal(&text, true).unwrap(), batches);
    }

    #[test]
    fn journal_is_also_a_plain_edge_op_stream() {
        // Batch markers are comments, so the loader sees just the rows.
        let text = serialize_journal(&sample());
        let parsed: Vec<_> = text.lines().filter_map(parse_edge_line).collect();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[2].op, EdgeOp::Delete);
    }

    #[test]
    fn foreign_spellings_and_missing_weights_parse() {
        let text = "+ 1 2\nd 3 4\n#batch 7\n-5 6\n#batch 8\n";
        let batches = parse_journal(text, false).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 7);
        assert_eq!(batches[0].ops[0].0, EdgeOp::Insert);
        assert_eq!(batches[0].ops[1].0, EdgeOp::Delete);
        let e = batches[0].ops[0].1;
        assert_eq!(e.weight, edge_weight(1, 2, false), "derived like admission");
        assert_eq!(batches[1].ops[0].1.src, 5);
    }

    #[test]
    fn trailing_rows_become_an_implicit_final_batch() {
        let text = "1 2\n#batch 0\n3 4\n";
        let batches = parse_journal(text, true).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].seq, 1, "implicit seq continues the last marker");
    }

    #[test]
    fn malformed_journals_are_rejected_with_line_numbers() {
        assert!(parse_journal("1 2\n#batch x\n", true)
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_journal("#batch 0\n", true).unwrap_err().contains("empty batch"));
        assert!(parse_journal("1 2\nnot an edge\n", true)
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn split_preserves_op_order_within_kind() {
        let b = &sample()[1];
        let (ins, del) = b.split();
        assert_eq!(ins, vec![Edge::new(2, 3, 8.875)]);
        assert_eq!(del, vec![Edge::new(0, 1, 2.5)]);
    }
}
