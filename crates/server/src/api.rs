//! Request routing: the tenant registry and the HTTP API surface.
//!
//! The API is deliberately plain-text (bodies are `key=value` lines or
//! edge-op lines in the loader's wire format) so every endpoint is
//! scriptable with nothing but a TCP socket:
//!
//! | Method | Path | Body | Success |
//! |---|---|---|---|
//! | `GET` | `/healthz` | — | `200 ok` + build/uptime info |
//! | `GET` | `/metrics` | — | `200` Prometheus text (`?format=csv` for CSV) |
//! | `GET` | `/debug/flight` | — | `200` flight-recorder Chrome trace (`?dump=1` also writes an artifact) |
//! | `GET` | `/tenants` | — | `200` one name per line |
//! | `POST` | `/tenants` | `key=value` config | `201` status doc |
//! | `GET` | `/tenants/{t}/status` | — | `200` status doc |
//! | `POST` | `/tenants/{t}/batches` | edge-op lines | `202 depth N` |
//! | `GET` | `/tenants/{t}/values` | — | `200` values doc |
//! | `GET` | `/tenants/{t}/edges` | — | `200` edge-list doc |
//! | `GET` | `/tenants/{t}/journal` | — | `200` journal doc |
//! | `DELETE` | `/tenants/{t}` | — | `204` |
//!
//! A full queue answers `429` with a `Retry-After` header — that is the
//! admission-control backpressure contract the soak harness exercises.

use crate::http::{Request, Response};
use crate::tenant::{SubmitError, Tenant, TenantConfig};
use saga_stream::loader::parse_edge_line;
use saga_stream::{edge_weight, Edge, EdgeOp, Node};
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use saga_utils::sync::{Arc, Mutex};
use std::collections::HashMap;

/// The server's tenant table. Shared by every connection worker; the map
/// lock is held only for lookups/insertions, never across graph work.
#[derive(Debug, Default)]
pub struct Registry {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    next_id: AtomicUsize,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Creates and spawns a tenant. `Err` when the name is taken.
    pub fn create(&self, config: TenantConfig) -> Result<Arc<Tenant>, String> {
        // Spawn before taking the map lock: the worker startup path reaches
        // graph and driver locks, and holding the registry lock across it
        // would pin a lock order the request handlers don't need. A name
        // race just costs one short-lived worker (shut down below).
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let name = config.name.clone();
        let tenant = Tenant::spawn(id, config);
        let clash = {
            let mut tenants = self.tenants.lock();
            if tenants.contains_key(&name) {
                true
            } else {
                tenants.insert(name.clone(), Arc::clone(&tenant));
                false
            }
        };
        if clash {
            tenant.shutdown();
            return Err(format!("tenant {name:?} already exists"));
        }
        Ok(tenant)
    }

    /// Looks up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().get(name).cloned()
    }

    /// Removes a tenant from the table (caller shuts it down outside the
    /// map lock).
    pub fn remove(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().remove(name)
    }

    /// Tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Shuts down and drops every tenant (drains queued work first).
    pub fn shutdown_all(&self) {
        let drained: Vec<Arc<Tenant>> = self.tenants.lock().drain().map(|(_, t)| t).collect();
        for tenant in drained {
            tenant.shutdown();
        }
    }
}

/// Routes one request to a handler and produces the response. Total:
/// every input maps to a response (the parser upstream already rejected
/// malformed HTTP).
pub fn handle(registry: &Registry, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(
            200,
            format!(
                "ok\nserver saga-server {}\nuptime_seconds {:.3}\n",
                env!("CARGO_PKG_VERSION"),
                saga_trace::expose::uptime_seconds(),
            ),
        ),
        ("GET", ["metrics"]) => {
            // Prometheus text exposition by default; the original CSV
            // snapshot stays reachable for the soak harness's artifacts.
            if has_query_flag(req, "format=csv") {
                Response::text(200, saga_trace::metrics::snapshot().to_csv())
            } else {
                Response::text(200, saga_trace::expose::prometheus_text())
            }
        }
        ("GET", ["debug", "flight"]) => {
            // The rings drain non-destructively, so serving the capture
            // does not consume it. `?dump=1` additionally writes the
            // on-disk artifact pair (trace + metrics sidecar).
            if has_query_flag(req, "dump=1") {
                crate::flight::dump("manual");
            }
            Response::text(200, saga_trace::chrome_trace())
        }
        ("GET", ["tenants"]) => {
            let mut body = String::new();
            for name in registry.names() {
                body.push_str(&name);
                body.push('\n');
            }
            Response::text(200, body)
        }
        ("POST", ["tenants"]) => create_tenant(registry, req),
        ("DELETE", ["tenants", name]) => match registry.remove(name) {
            Some(tenant) => {
                tenant.shutdown();
                // Evict the tenant's indexed series so a churn of
                // create/delete cycles cannot exhaust the per-family
                // cardinality cap (tenant ids are never reused).
                saga_trace::metrics::remove_indexed("server.queue_depth", tenant.id);
                saga_trace::metrics::remove_indexed("mem.tenant_bytes", tenant.id);
                Response::text(204, "")
            }
            None => Response::text(404, format!("no tenant {name:?}\n")),
        },
        ("POST", ["tenants", name, "batches"]) => submit_batch(registry, name, req),
        ("GET", ["tenants", name, "status"]) => with_tenant(registry, name, |t| {
            Response::text(200, t.status_text())
        }),
        ("GET", ["tenants", name, "values"]) => with_snapshot(registry, name, |_, s| {
            Response::text(200, s.values_text)
        }),
        ("GET", ["tenants", name, "edges"]) => with_snapshot(registry, name, |_, s| {
            Response::text(200, s.edges_text)
        }),
        ("GET", ["tenants", name, "journal"]) => {
            // The snapshot barrier first: the journal then covers every
            // batch admitted before this request arrived.
            with_snapshot(registry, name, |t, _| Response::text(200, t.journal_text()))
        }
        (_, ["healthz" | "metrics" | "tenants"]) | (_, ["tenants", ..]) | (_, ["debug", ..]) => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "unknown path\n"),
    }
}

/// True when the raw query string contains `flag` as one of its
/// `&`-separated components (exact match — the API's query surface is
/// just boolean flags, no percent-decoding needed).
fn has_query_flag(req: &Request, flag: &str) -> bool {
    req.query.split('&').any(|kv| kv == flag)
}

fn with_tenant<F>(registry: &Registry, name: &str, f: F) -> Response
where
    F: FnOnce(&Tenant) -> Response,
{
    match registry.get(name) {
        Some(tenant) => f(&tenant),
        None => Response::text(404, format!("no tenant {name:?}\n")),
    }
}

fn with_snapshot<F>(registry: &Registry, name: &str, f: F) -> Response
where
    F: FnOnce(&Tenant, crate::tenant::TenantSnapshot) -> Response,
{
    with_tenant(registry, name, |tenant| match tenant.snapshot() {
        Some(snap) => f(tenant, snap),
        None => Response::text(409, "tenant is shutting down\n"),
    })
}

fn create_tenant(registry: &Registry, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Response::text(400, "config body must be UTF-8\n"),
    };
    let config = match TenantConfig::parse(body) {
        Ok(c) => c,
        Err(e) => return Response::text(400, format!("bad config: {e}\n")),
    };
    match registry.create(config) {
        Ok(tenant) => Response::text(201, tenant.status_text()),
        Err(e) => Response::text(409, format!("{e}\n")),
    }
}

/// Parses an uploaded batch body — edge-op lines in every spelling the
/// loader accepts — into driver ops, bounds-checking vertex ids against
/// the tenant's capacity and deriving absent weights deterministically.
///
/// # Errors
///
/// Returns `(status, message)`: 400 for unparseable rows, out-of-range
/// ids, or an empty batch.
pub fn parse_batch_body(
    body: &str,
    capacity: usize,
    directed: bool,
) -> Result<Vec<(EdgeOp, Edge)>, (u16, String)> {
    let mut ops = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let Some(raw) = parse_edge_line(line) else {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            return Err((400, format!("line {}: unparseable edge op {line:?}", lineno + 1)));
        };
        if raw.src >= capacity as u64 || raw.dst >= capacity as u64 {
            return Err((
                400,
                format!(
                    "line {}: vertex id out of range (capacity {capacity})",
                    lineno + 1
                ),
            ));
        }
        let (src, dst) = (raw.src as Node, raw.dst as Node);
        let weight = raw.weight.unwrap_or_else(|| edge_weight(src, dst, directed));
        ops.push((raw.op, Edge::new(src, dst, weight)));
    }
    if ops.is_empty() {
        return Err((400, "batch contains no edge ops".to_string()));
    }
    Ok(ops)
}

fn submit_batch(registry: &Registry, name: &str, req: &Request) -> Response {
    with_tenant(registry, name, |tenant| {
        let body = match std::str::from_utf8(&req.body) {
            Ok(b) => b,
            Err(_) => return Response::text(400, "batch body must be UTF-8\n"),
        };
        let ops = match parse_batch_body(body, tenant.config.capacity, tenant.config.directed) {
            Ok(ops) => ops,
            Err((status, msg)) => return Response::text(status, format!("{msg}\n")),
        };
        match tenant.submit(ops, saga_trace::ctx::current()) {
            Ok(depth) => {
                crate::flight::note_admitted();
                Response::text(202, format!("depth {depth}\n"))
            }
            Err(SubmitError::Full) => {
                // Shedding: count it toward the flight recorder's
                // sustained-rejection trigger.
                crate::flight::note_shed();
                let mut resp = Response::text(429, "queue full, retry\n");
                resp.headers.push(("retry-after".to_string(), "1".to_string()));
                resp
            }
            Err(SubmitError::Closed) => Response::text(409, "tenant is shutting down\n"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn lifecycle_create_upload_read_delete() {
        let registry = Registry::new();
        let resp = handle(&registry, &req("POST", "/tenants", "name=t0\nalgorithm=cc\ncapacity=8\n"));
        assert_eq!(resp.status, 201, "{resp:?}");

        let resp = handle(&registry, &req("POST", "/tenants/t0/batches", "0 1\n+ 1 2\nd 9 9\n"));
        assert_eq!(resp.status, 400, "id 9 out of capacity 8: {resp:?}");
        let resp = handle(&registry, &req("POST", "/tenants/t0/batches", "0 1\n+ 1 2\n"));
        assert_eq!(resp.status, 202, "{resp:?}");

        let resp = handle(&registry, &req("GET", "/tenants/t0/values", ""));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).starts_with("u32"), "{resp:?}");

        let resp = handle(&registry, &req("GET", "/tenants/t0/edges", ""));
        assert_eq!(String::from_utf8_lossy(&resp.body).lines().count(), 2);

        let resp = handle(&registry, &req("GET", "/tenants/t0/journal", ""));
        let journal = String::from_utf8_lossy(&resp.body).to_string();
        assert!(journal.contains("#batch 0"), "{journal}");

        let resp = handle(&registry, &req("GET", "/tenants", ""));
        assert_eq!(String::from_utf8_lossy(&resp.body), "t0\n");

        assert_eq!(handle(&registry, &req("DELETE", "/tenants/t0", "")).status, 204);
        assert_eq!(handle(&registry, &req("GET", "/tenants/t0/status", "")).status, 404);
    }

    #[test]
    fn error_paths() {
        let registry = Registry::new();
        assert_eq!(handle(&registry, &req("GET", "/nope", "")).status, 404);
        assert_eq!(handle(&registry, &req("PUT", "/tenants", "")).status, 405);
        assert_eq!(handle(&registry, &req("POST", "/tenants", "structure=as\n")).status, 400);
        assert_eq!(handle(&registry, &req("POST", "/tenants/ghost/batches", "0 1\n")).status, 404);
        assert_eq!(handle(&registry, &req("DELETE", "/tenants/ghost", "")).status, 404);

        handle(&registry, &req("POST", "/tenants", "name=dup\n"));
        assert_eq!(handle(&registry, &req("POST", "/tenants", "name=dup\n")).status, 409);
        assert_eq!(handle(&registry, &req("POST", "/tenants/dup/batches", "\n#c\n")).status, 400);
        registry.shutdown_all();
    }

    fn req_q(method: &str, path: &str, query: &str) -> Request {
        Request {
            query: query.to_string(),
            ..req(method, path, "")
        }
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let registry = Registry::new();
        let resp = handle(&registry, &req("GET", "/healthz", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body).to_string();
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("server saga-server "), "{body}");
        assert!(body.contains("uptime_seconds "), "{body}");

        // Default exposition is Prometheus text the in-tree validator accepts.
        let resp = handle(&registry, &req("GET", "/metrics", ""));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        saga_trace::expose::parse_prometheus(&text).expect("valid exposition");
        assert!(text.contains("saga_build_info"), "{text}");

        // The CSV snapshot is still served behind `?format=csv`.
        let resp = handle(&registry, &req_q("GET", "/metrics", "format=csv"));
        let csv = String::from_utf8_lossy(&resp.body).to_string();
        assert!(csv.starts_with("kind,name,count,value"), "{csv}");
    }

    #[test]
    fn debug_flight_serves_the_live_capture() {
        let registry = Registry::new();
        let resp = handle(&registry, &req("GET", "/debug/flight", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body).to_string();
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
        // The capture is drained non-destructively: a second read works.
        let again = handle(&registry, &req("GET", "/debug/flight", ""));
        assert_eq!(again.status, 200);
        assert_eq!(handle(&registry, &req("POST", "/debug/flight", "")).status, 405);
    }

    #[test]
    fn tenant_delete_evicts_indexed_series() {
        let registry = Registry::new();
        let resp = handle(&registry, &req("POST", "/tenants", "name=evict\ncapacity=4\n"));
        assert_eq!(resp.status, 201, "{resp:?}");
        let id = registry.get("evict").unwrap().id;
        let depth_name = format!("server.queue_depth.{id}");
        let snap = saga_trace::metrics::snapshot();
        assert!(snap.gauges.iter().any(|(n, _)| n == &depth_name), "{depth_name} registered");
        assert_eq!(handle(&registry, &req("DELETE", "/tenants/evict", "")).status, 204);
        let snap = saga_trace::metrics::snapshot();
        assert!(
            !snap.gauges.iter().any(|(n, _)| n == &depth_name),
            "{depth_name} evicted on delete"
        );
    }
}
