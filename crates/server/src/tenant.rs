//! Per-tenant state: configuration, the admission-controlled batch queue,
//! and the worker thread that owns the tenant's [`DriverSession`].
//!
//! Every tenant gets exactly one worker thread. HTTP handlers never touch
//! the graph or compute state — they enqueue [`WorkItem`]s and the worker
//! processes them in FIFO order, which is what makes the journal a total
//! order of everything the tenant applied (DESIGN.md §13). Reads (status
//! snapshots, value/edge dumps) ride the same queue as a [`WorkItem::
//! Snapshot`] barrier pushed past the admission bound, so a dump always
//! reflects a fully drained prefix of the accepted batches.
//!
//! [`DriverSession`]: saga_core::driver::DriverSession

use crate::journal::append_batch;
use saga_algorithms::{AlgorithmKind, AlgorithmParams, ComputeModelKind};
use saga_core::driver::{DriverSession, StreamDriver};
use saga_graph::{DataStructureKind, DynamicGraph};
use saga_stream::{Edge, EdgeOp, Node, Weight};
use saga_trace::metrics::{counter, gauge, histogram, indexed_gauge, Counter, Gauge, Histogram};
use saga_utils::queue::BoundedQueue;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use saga_utils::sync::{thread, Arc, Condvar, Mutex};
use std::time::Instant;

/// Everything needed to build a tenant's driver, parsed from the
/// `key=value` body of `POST /tenants`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name (path segment; token characters only).
    pub name: String,
    /// Which of the five structures backs the graph.
    pub structure: DataStructureKind,
    /// Which of the six algorithms runs per batch.
    pub algorithm: AlgorithmKind,
    /// From-scratch or incremental compute.
    pub model: ComputeModelKind,
    /// Vertex-id universe (the session grows it to fit if a batch names a
    /// larger id — same rule as the driver).
    pub capacity: usize,
    /// Graph directedness.
    pub directed: bool,
    /// Admission bound: batches queued beyond this are rejected with 429.
    pub queue_bound: usize,
    /// Compute threads for the tenant's pool.
    pub threads: usize,
    /// Explicit root for BFS/SSSP/SSWP; defaults to the source of the
    /// first accepted op (the journal-replay convention).
    pub root: Option<Node>,
    /// When set, the tenant's driver runs the sharded BSP execution
    /// layer with this many shards (each batch's compute fans out over
    /// per-shard BSP workers); `None` keeps the serial driver.
    pub shards: Option<usize>,
}

impl TenantConfig {
    /// Parses a config from `key=value` lines (one per line; `#` comments
    /// and blank lines ignored). Only `name` is required.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line or key: unknown keys,
    /// unknown enum spellings, unparseable numbers, or a missing/invalid
    /// name.
    pub fn parse(body: &str) -> Result<TenantConfig, String> {
        let mut cfg = TenantConfig {
            name: String::new(),
            structure: DataStructureKind::AdjacencyShared,
            algorithm: AlgorithmKind::Bfs,
            model: ComputeModelKind::Incremental,
            capacity: 64,
            directed: true,
            queue_bound: 8,
            threads: 2,
            root: None,
            shards: None,
        };
        for (lineno, line) in body.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got {line:?}", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => cfg.name = value.to_string(),
                "structure" => cfg.structure = parse_structure(value)?,
                "algorithm" => cfg.algorithm = parse_algorithm(value)?,
                "model" => cfg.model = parse_model(value)?,
                "capacity" => cfg.capacity = parse_num(key, value)?,
                "queue_bound" => cfg.queue_bound = parse_num(key, value)?,
                "threads" => cfg.threads = parse_num::<usize>(key, value)?.clamp(1, 64),
                "directed" => {
                    cfg.directed = match value {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        other => return Err(format!("directed: expected true/false, got {other:?}")),
                    }
                }
                "root" => cfg.root = Some(parse_num(key, value)?),
                "shards" => cfg.shards = Some(parse_num::<usize>(key, value)?.clamp(1, 64)),
                other => return Err(format!("unknown config key {other:?}")),
            }
        }
        if cfg.name.is_empty() {
            return Err("missing required key `name`".to_string());
        }
        if !cfg.name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
            return Err(format!(
                "tenant name {:?} must be alphanumeric/dash/underscore",
                cfg.name
            ));
        }
        if cfg.capacity == 0 {
            return Err("capacity must be at least 1".to_string());
        }
        Ok(cfg)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("{key}: not a number: {value:?}"))
}

fn parse_structure(s: &str) -> Result<DataStructureKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "as" | "adjacency-shared" | "adjacencyshared" => DataStructureKind::AdjacencyShared,
        "ac" | "adjacency-chunked" | "adjacencychunked" => DataStructureKind::AdjacencyChunked,
        "stinger" => DataStructureKind::Stinger,
        "dah" => DataStructureKind::Dah,
        "delta" | "delta-csr" | "deltacsr" => DataStructureKind::DeltaCsr,
        other => return Err(format!("unknown structure {other:?} (as|ac|stinger|dah|delta-csr)")),
    })
}

fn parse_algorithm(s: &str) -> Result<AlgorithmKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "bfs" => AlgorithmKind::Bfs,
        "cc" => AlgorithmKind::Cc,
        "mc" => AlgorithmKind::Mc,
        "pr" | "pagerank" => AlgorithmKind::PageRank,
        "sssp" => AlgorithmKind::Sssp,
        "sswp" => AlgorithmKind::Sswp,
        other => return Err(format!("unknown algorithm {other:?} (bfs|cc|mc|pr|sssp|sswp)")),
    })
}

fn parse_model(s: &str) -> Result<ComputeModelKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "fs" | "from-scratch" | "fromscratch" => ComputeModelKind::FromScratch,
        "inc" | "incremental" => ComputeModelKind::Incremental,
        other => return Err(format!("unknown model {other:?} (fs|inc)")),
    })
}

/// The algorithm tunables every tenant runs with: tight PageRank
/// tolerances so an offline from-scratch replay of the journal converges
/// to the same fixpoint the server did. These values mirror the
/// differential checker's (`saga-check` is downstream of this crate, so
/// they are duplicated here by design — the journal-replay test in
/// `saga-check` pins the agreement).
pub fn tenant_params(root: Node) -> AlgorithmParams {
    AlgorithmParams {
        root,
        pr_epsilon: 1e-11,
        pr_fs_tolerance: 1e-11,
        ..AlgorithmParams::default()
    }
}

/// One unit of work on a tenant's queue.
pub enum WorkItem {
    /// An admitted batch of edge ops, in acceptance order.
    Batch {
        /// The ops to apply (inserts before deletes, driver semantics).
        ops: Vec<(EdgeOp, Edge)>,
        /// The trace context of the HTTP request that admitted the batch;
        /// the worker re-installs it so the batch's driver/BSP spans join
        /// the request's trace tree across the queue hop.
        ctx: Option<saga_trace::TraceCtx>,
    },
    /// A read barrier: the worker fulfils the cell with a consistent dump
    /// once everything queued ahead of it has been applied.
    Snapshot(Arc<SnapshotCell>),
}

impl std::fmt::Debug for WorkItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkItem::Batch { ops, ctx } => f
                .debug_struct("Batch")
                .field("ops", &ops.len())
                .field("traced", &ctx.is_some())
                .finish(),
            WorkItem::Snapshot(_) => f.write_str("Snapshot"),
        }
    }
}

/// A consistent point-in-time dump of a tenant, produced by its worker at
/// a [`WorkItem::Snapshot`] barrier.
#[derive(Debug, Clone, Default)]
pub struct TenantSnapshot {
    /// Batches fully applied when the barrier drained.
    pub batches_processed: usize,
    /// Logical edges in the graph.
    pub num_edges: usize,
    /// Vertex values rendered with [`render_values`]; empty before the
    /// first batch.
    pub values_text: String,
    /// Canonical sorted edge list rendered with [`render_edge_list`].
    pub edges_text: String,
}

/// One-shot rendezvous the worker fulfils and a handler thread waits on.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    slot: Mutex<Option<TenantSnapshot>>,
    ready: Condvar,
}

impl SnapshotCell {
    /// Deposits the snapshot and wakes the waiter.
    pub fn fulfil(&self, snap: TenantSnapshot) {
        *self.slot.lock() = Some(snap);
        self.ready.notify_all();
    }

    /// Blocks until the worker deposits the snapshot.
    pub fn block_until_filled(&self) -> TenantSnapshot {
        let mut slot = self.slot.lock();
        loop {
            if let Some(snap) = slot.take() {
                return snap;
            }
            self.ready.wait(&mut slot);
        }
    }
}

/// Why a batch submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its admission bound — retry later (HTTP 429).
    Full,
    /// The tenant is shutting down (HTTP 409).
    Closed,
}

/// A live tenant: config, queue, journal, status counters, and the worker
/// thread's join handle.
pub struct Tenant {
    /// The configuration the tenant was created with.
    pub config: TenantConfig,
    /// Registry-assigned id, used to index per-tenant metric families.
    pub id: usize,
    queue: Arc<BoundedQueue<WorkItem>>,
    journal: Arc<Mutex<String>>,
    accepted: AtomicUsize,
    processed: Arc<AtomicUsize>,
    rejected: AtomicUsize,
    depth_gauge: Arc<Gauge>,
    handle: Mutex<Option<thread::JoinHandle>>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("config", &self.config)
            .field("id", &self.id)
            .field("accepted", &self.accepted.load(Ordering::Relaxed))
            .field("processed", &self.processed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// Creates the tenant and spawns its worker thread.
    pub fn spawn(id: usize, config: TenantConfig) -> Arc<Tenant> {
        let queue = Arc::new(BoundedQueue::new(config.queue_bound));
        let journal = Arc::new(Mutex::new(String::new()));
        let processed = Arc::new(AtomicUsize::new(0));
        let depth_gauge = indexed_gauge("server.queue_depth", id);
        let tenant = Arc::new(Tenant {
            config: config.clone(),
            id,
            queue: Arc::clone(&queue),
            journal: Arc::clone(&journal),
            accepted: AtomicUsize::new(0),
            processed: Arc::clone(&processed),
            rejected: AtomicUsize::new(0),
            depth_gauge: Arc::clone(&depth_gauge),
            handle: Mutex::new(None),
        });
        let worker = WorkerState {
            id,
            config,
            queue,
            journal,
            processed,
            depth_gauge,
            batch_ns: histogram("server.tenant_batch_ns"),
            batches_total: counter("server.batches_processed"),
            ops_total: counter("server.ops_processed"),
            mem_high: gauge("mem.high_water"),
        };
        let name = format!("saga-tenant-{id}-{}", tenant.config.name);
        // Create the thread first so the handle mutex is never held across
        // the spawn (the worker body reaches graph and driver locks).
        let joiner = thread::spawn_named(name, move || worker.run());
        *tenant.handle.lock() = Some(joiner);
        tenant
    }

    /// Tries to admit a batch. On success returns the queue depth after
    /// the push (the `Retry-After` hint comes from this); on [`SubmitError::
    /// Full`] the caller answers 429 — that is the backpressure signal the
    /// soak test observes. `ctx` is the admitting request's trace context
    /// (usually `saga_trace::ctx::current()`); it rides the queue so the
    /// worker's spans stay in the request's trace tree.
    pub fn submit(
        &self,
        ops: Vec<(EdgeOp, Edge)>,
        ctx: Option<saga_trace::TraceCtx>,
    ) -> Result<usize, SubmitError> {
        match self.queue.try_push(WorkItem::Batch { ops, ctx }) {
            Ok(depth) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.depth_gauge.set(depth as f64);
                Ok(depth)
            }
            Err(_item) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if self.queue.is_closed() {
                    Err(SubmitError::Closed)
                } else {
                    Err(SubmitError::Full)
                }
            }
        }
    }

    /// Requests a consistent dump: pushes a [`WorkItem::Snapshot`] barrier
    /// past the admission bound (reads must not be starved by a full
    /// queue) and blocks until the worker drains to it. `None` when the
    /// tenant is shutting down.
    pub fn snapshot(&self) -> Option<TenantSnapshot> {
        let cell = Arc::new(SnapshotCell::default());
        self.queue
            .push_force(WorkItem::Snapshot(Arc::clone(&cell)))
            .ok()?;
        Some(cell.block_until_filled())
    }

    /// The journal text: every batch applied so far, in application
    /// order. Taken after a [`Tenant::snapshot`] barrier this is the exact
    /// input for an offline differential replay.
    pub fn journal_text(&self) -> String {
        self.journal.lock().clone()
    }

    /// Current queue depth (admitted batches not yet applied).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Batches admitted (may exceed processed while the queue is deep).
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Batches fully applied by the worker.
    pub fn processed(&self) -> usize {
        self.processed.load(Ordering::Relaxed)
    }

    /// Batches refused at the admission bound since creation.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Renders the status document served at
    /// `GET /tenants/{name}/status` (`key value` lines).
    pub fn status_text(&self) -> String {
        format!(
            "name {}\nstructure {:?}\nalgorithm {}\nmodel {}\ndirected {}\n\
             queue_bound {}\nqueue_depth {}\naccepted {}\nprocessed {}\nrejected {}\n",
            self.config.name,
            self.config.structure,
            self.config.algorithm,
            self.config.model,
            self.config.directed,
            self.config.queue_bound,
            self.queue_depth(),
            self.accepted(),
            self.processed(),
            self.rejected(),
        )
    }

    /// Closes the queue (new submissions fail, queued work still drains)
    /// and joins the worker. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handle = self.handle.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything the worker thread owns.
struct WorkerState {
    id: usize,
    config: TenantConfig,
    queue: Arc<BoundedQueue<WorkItem>>,
    journal: Arc<Mutex<String>>,
    processed: Arc<AtomicUsize>,
    depth_gauge: Arc<Gauge>,
    batch_ns: Arc<Histogram>,
    batches_total: Arc<Counter>,
    ops_total: Arc<Counter>,
    mem_high: Arc<Gauge>,
}

impl WorkerState {
    /// The worker loop: drain the queue until it is closed and empty. The
    /// driver session is created lazily on the first batch so the replay
    /// root can default to the first accepted op's source vertex (the
    /// journal-replay convention — see [`crate::journal::journal_root`]).
    fn run(self) {
        let mut builder = StreamDriver::builder(self.config.structure, self.config.capacity)
            .algorithm(self.config.algorithm)
            .compute_model(self.config.model)
            .threads(self.config.threads);
        if let Some(shards) = self.config.shards {
            builder = builder.sharded(shards);
        }
        let driver = builder.build();
        let mut session: Option<DriverSession<'_>> = None;
        let tenant_bytes = saga_trace::metrics::indexed_gauge("mem.tenant_bytes", self.id);
        while let Some(item) = self.queue.pop() {
            self.depth_gauge.set(self.queue.depth() as f64);
            match item {
                WorkItem::Batch { ops, ctx } => {
                    // Re-install the admitting request's trace context so
                    // the batch span (and every driver/BSP span under it)
                    // carries the request's trace id across the queue hop.
                    let _ctx = saga_trace::ctx::scope(ctx);
                    let _span = saga_trace::span!("tenant_batch", ops = ops.len() as u64);
                    let sess = session.get_or_insert_with(|| {
                        let root = self
                            .config
                            .root
                            .or_else(|| ops.first().map(|&(_, e)| e.src))
                            .unwrap_or(0);
                        driver.session(self.config.capacity, self.config.directed, root)
                    });
                    let started = Instant::now();
                    let (inserts, deletes) = split_ops(&ops);
                    let seq = self.processed.load(Ordering::Relaxed);
                    sess.step(&inserts, &deletes);
                    {
                        let mut journal = self.journal.lock();
                        append_batch(&mut journal, seq, &ops);
                    }
                    self.processed.fetch_add(1, Ordering::Release);
                    let elapsed_ns = started.elapsed().as_nanos() as u64;
                    self.batch_ns.record(elapsed_ns);
                    self.batches_total.incr();
                    self.ops_total.add(ops.len() as u64);
                    crate::flight::note_batch_latency(elapsed_ns);
                    // Memory accounting (non-zero only with the
                    // `alloc-track` counting allocator installed): the
                    // worker thread's cumulative allocations approximate
                    // this tenant's footprint, and the process high-water
                    // mark feeds ROADMAP's `mem.high_water` gauge.
                    if saga_trace::alloc::tracking_active() {
                        tenant_bytes.set(saga_trace::alloc::thread_allocated_bytes() as f64);
                        self.mem_high.set(saga_trace::alloc::high_water_bytes() as f64);
                    }
                }
                WorkItem::Snapshot(cell) => {
                    let snap = match &session {
                        Some(sess) => TenantSnapshot {
                            batches_processed: self.processed.load(Ordering::Relaxed),
                            num_edges: sess.graph().num_edges(),
                            values_text: render_values(&sess.values()),
                            edges_text: render_edge_list(sess.graph()),
                        },
                        None => TenantSnapshot::default(),
                    };
                    cell.fulfil(snap);
                }
            }
        }
        // Unblock any snapshot waiters that raced with close: the queue
        // rejects force-pushes after close, but items already queued when
        // close() ran were drained above, so nothing is left to fulfil.
    }

}

/// Splits ops into `(inserts, deletes)` preserving order within each kind
/// — the driver applies inserts before deletes within a batch.
pub fn split_ops(ops: &[(EdgeOp, Edge)]) -> (Vec<Edge>, Vec<Edge>) {
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for &(op, e) in ops {
        match op {
            EdgeOp::Insert => inserts.push(e),
            EdgeOp::Delete => deletes.push(e),
        }
    }
    (inserts, deletes)
}

/// Renders vertex values as text: a `type len` header line, then one
/// `vertex value` row per vertex. Rust's shortest-round-trip float
/// formatting makes `parse_values` ∘ `render_values` exact.
pub fn render_values(values: &saga_algorithms::VertexValues) -> String {
    use saga_algorithms::VertexValues;
    let mut out = String::new();
    use std::fmt::Write as _;
    match values {
        VertexValues::U32(v) => {
            let _ = writeln!(out, "u32 {}", v.len());
            for (i, x) in v.iter().enumerate() {
                let _ = writeln!(out, "{i} {x}");
            }
        }
        VertexValues::F32(v) => {
            let _ = writeln!(out, "f32 {}", v.len());
            for (i, x) in v.iter().enumerate() {
                let _ = writeln!(out, "{i} {x}");
            }
        }
        VertexValues::F64(v) => {
            let _ = writeln!(out, "f64 {}", v.len());
            for (i, x) in v.iter().enumerate() {
                let _ = writeln!(out, "{i} {x}");
            }
        }
    }
    out
}

/// Parses a [`render_values`] document back into [`VertexValues`].
///
/// # Errors
///
/// Returns a message for a missing/unknown header, a row count mismatch,
/// or an unparseable row.
///
/// [`VertexValues`]: saga_algorithms::VertexValues
pub fn parse_values(text: &str) -> Result<saga_algorithms::VertexValues, String> {
    use saga_algorithms::VertexValues;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty values document")?;
    let (ty, len) = header.split_once(' ').ok_or("malformed values header")?;
    let len: usize = len.parse().map_err(|_| "malformed values length".to_string())?;
    fn rows<T: std::str::FromStr>(
        lines: std::str::Lines<'_>,
        len: usize,
    ) -> Result<Vec<T>, String> {
        let mut out = Vec::with_capacity(len);
        for line in lines {
            let (_, v) = line.split_once(' ').ok_or("malformed values row")?;
            out.push(v.parse().map_err(|_| format!("bad value {v:?}"))?);
        }
        if out.len() != len {
            return Err(format!("expected {len} rows, got {}", out.len()));
        }
        Ok(out)
    }
    match ty {
        "u32" => Ok(VertexValues::U32(rows(lines, len)?)),
        "f32" => Ok(VertexValues::F32(rows(lines, len)?)),
        "f64" => Ok(VertexValues::F64(rows(lines, len)?)),
        other => Err(format!("unknown values type {other:?}")),
    }
}

/// Renders the graph's current edge set as sorted `src dst weight` rows —
/// the same canonical form [`GraphOracle::edge_list`] produces (one row
/// per stored direction; `src <= dst` orientation for undirected graphs),
/// so an offline replay can diff topology textually.
///
/// [`GraphOracle::edge_list`]: saga_graph::oracle::GraphOracle::edge_list
pub fn render_edge_list(graph: &dyn DynamicGraph) -> String {
    let directed = graph.is_directed();
    let mut rows: Vec<(Node, Node, Weight)> = Vec::with_capacity(graph.num_edges());
    for v in 0..graph.capacity() as Node {
        graph.for_each_out_neighbor(v, &mut |n, w| {
            if directed || v <= n {
                rows.push((v, n, w));
            }
        });
    }
    rows.sort_by_key(|&(s, d, _)| (s, d));
    let mut out = String::new();
    use std::fmt::Write as _;
    for (s, d, w) in rows {
        let _ = writeln!(out, "{s} {d} {w}");
    }
    out
}

/// Parses a [`render_edge_list`] document into sorted triples, for direct
/// comparison against [`GraphOracle::edge_list`].
///
/// # Errors
///
/// Returns a message naming the first malformed row.
///
/// [`GraphOracle::edge_list`]: saga_graph::oracle::GraphOracle::edge_list
pub fn parse_edge_list(text: &str) -> Result<Vec<(Node, Node, Weight)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut it = line.split_ascii_whitespace();
        let (Some(s), Some(d), Some(w)) = (it.next(), it.next(), it.next()) else {
            return Err(format!("line {}: malformed edge row {line:?}", lineno + 1));
        };
        let parse = |v: &str| -> Result<Node, String> {
            v.parse().map_err(|_| format!("line {}: bad vertex {v:?}", lineno + 1))
        };
        let w: Weight = w
            .parse()
            .map_err(|_| format!("line {}: bad weight {w:?}", lineno + 1))?;
        out.push((parse(s)?, parse(d)?, w));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_defaults_and_overrides() {
        let cfg = TenantConfig::parse("name=t0\n").unwrap();
        assert_eq!(cfg.model, ComputeModelKind::Incremental);
        assert_eq!(cfg.queue_bound, 8);
        let cfg = TenantConfig::parse(
            "name = web\nstructure = dah\nalgorithm = pr\nmodel = fs\n\
             capacity = 128\ndirected = false\nqueue_bound = 3\nthreads = 4\nroot = 7\n",
        )
        .unwrap();
        assert_eq!(cfg.structure, DataStructureKind::Dah);
        assert_eq!(cfg.algorithm, AlgorithmKind::PageRank);
        assert_eq!(cfg.model, ComputeModelKind::FromScratch);
        assert!(!cfg.directed);
        assert_eq!(cfg.root, Some(7));
        assert_eq!(cfg.shards, None);
        let cfg = TenantConfig::parse("name=sh\nshards=4\n").unwrap();
        assert_eq!(cfg.shards, Some(4));
        let cfg = TenantConfig::parse("name=sh\nshards=999\n").unwrap();
        assert_eq!(cfg.shards, Some(64), "shards clamp to the pool's bound");
    }

    #[test]
    fn config_rejects_bad_input() {
        assert!(TenantConfig::parse("").unwrap_err().contains("name"));
        assert!(TenantConfig::parse("name=a b\n").unwrap_err().contains("alphanumeric"));
        assert!(TenantConfig::parse("name=x\nstructure=btree\n")
            .unwrap_err()
            .contains("unknown structure"));
        assert!(TenantConfig::parse("name=x\nbogus=1\n")
            .unwrap_err()
            .contains("unknown config key"));
        assert!(TenantConfig::parse("name=x\ncapacity=0\n")
            .unwrap_err()
            .contains("capacity"));
    }

    #[test]
    fn tenant_processes_batches_and_journals_them() {
        let cfg = TenantConfig::parse("name=unit\nalgorithm=cc\nmodel=inc\ncapacity=8\n").unwrap();
        let tenant = Tenant::spawn(900, cfg);
        let w = |s, d| saga_stream::edge_weight(s, d, true);
        tenant
            .submit(
                vec![
                    (EdgeOp::Insert, Edge::new(0, 1, w(0, 1))),
                    (EdgeOp::Insert, Edge::new(1, 2, w(1, 2))),
                ],
                None,
            )
            .unwrap();
        tenant
            .submit(vec![(EdgeOp::Delete, Edge::new(0, 1, w(0, 1)))], None)
            .unwrap();
        let snap = tenant.snapshot().unwrap();
        assert_eq!(snap.batches_processed, 2);
        assert_eq!(snap.num_edges, 1);
        let journal = tenant.journal_text();
        let batches = crate::journal::parse_journal(&journal, true).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 0);
        assert_eq!(batches[1].ops[0].0, EdgeOp::Delete);
        tenant.shutdown();
        assert_eq!(tenant.submit(vec![], None), Err(SubmitError::Closed));
    }

    #[test]
    fn snapshot_before_any_batch_is_empty() {
        let cfg = TenantConfig::parse("name=empty\n").unwrap();
        let tenant = Tenant::spawn(901, cfg);
        let snap = tenant.snapshot().unwrap();
        assert_eq!(snap.batches_processed, 0);
        assert!(snap.values_text.is_empty());
        tenant.shutdown();
    }

    #[test]
    fn backpressure_surfaces_as_full() {
        // bound=1 and a worker stalled behind a slow batch is racy to
        // arrange; instead close admission deterministically by filling
        // the queue before the worker can drain: use a large batch count
        // and accept that some submissions may be admitted. The invariant
        // under test is that a Full result leaves counters consistent.
        let cfg = TenantConfig::parse("name=bp\nqueue_bound=1\ncapacity=4\n").unwrap();
        let tenant = Tenant::spawn(902, cfg);
        let w = saga_stream::edge_weight(0, 1, true);
        let mut rejected = 0;
        for _ in 0..64 {
            if tenant.submit(vec![(EdgeOp::Insert, Edge::new(0, 1, w))], None)
                == Err(SubmitError::Full)
            {
                rejected += 1;
            }
        }
        assert_eq!(tenant.rejected(), rejected);
        let snap = tenant.snapshot().unwrap();
        assert_eq!(snap.batches_processed, tenant.accepted());
        tenant.shutdown();
    }

    #[test]
    fn values_render_parse_round_trip() {
        use saga_algorithms::VertexValues;
        for v in [
            VertexValues::U32(vec![0, 7, u32::MAX]),
            VertexValues::F32(vec![0.125, f32::INFINITY, 3.0e-8]),
            VertexValues::F64(vec![0.15000000000000002, 1.0 / 3.0]),
        ] {
            let text = render_values(&v);
            let back = parse_values(&text).unwrap();
            assert_eq!(format!("{v:?}"), format!("{back:?}"));
        }
        assert!(parse_values("").is_err());
        assert!(parse_values("u8 1\n0 1\n").is_err());
        assert!(parse_values("u32 2\n0 1\n").is_err());
    }

    #[test]
    fn edge_list_render_parse_round_trip() {
        let text = "0 1 2.5\n1 3 1.125\n";
        let parsed = parse_edge_list(text).unwrap();
        assert_eq!(parsed, vec![(0, 1, 2.5), (1, 3, 1.125)]);
        assert!(parse_edge_list("0 x 1\n").is_err());
        assert!(parse_edge_list("0 1\n").is_err());
    }
}
