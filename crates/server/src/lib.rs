//! Multi-tenant streaming graph analytics service.
//!
//! `saga-server` turns the SAGA-Bench streaming engine into a long-running
//! service: a dependency-free HTTP/1.1 server over `std::net` hosting many
//! named graph *tenants* concurrently. Each tenant picks a point in the
//! structure × algorithm × compute-model matrix (the paper's 5 × 6 × 2
//! space), receives edge-op batches in the loader's wire format, and is
//! driven by its own [`DriverSession`] behind an admission-controlled
//! bounded queue — a full queue answers `429`, which is the backpressure
//! contract the soak harness in `saga-check` observes.
//!
//! Every admitted batch is recorded, in application order, into a
//! per-tenant [journal](journal). Replaying that journal offline through
//! `GraphOracle` (and a from-scratch driver run) and diffing against the
//! server's own `/values` and `/edges` dumps is the service's correctness
//! story: the server provably processed exactly what it admitted. See
//! DESIGN.md §13.
//!
//! The service is observable end to end (DESIGN.md §14): every accepted
//! request mints a [`TraceCtx`](saga_trace::TraceCtx) that follows the
//! batch through the tenant queue into driver and BSP spans (stitched
//! back into one tree by `saga_trace::analyze`), the per-thread trace
//! rings run as an always-on [flight recorder](flight) dumped on panic /
//! sustained shedding / slow batches, and `GET /metrics` serves the
//! registry as Prometheus text exposition (CSV via `?format=csv`).
//!
//! Module map:
//!
//! - [`http`] — total HTTP/1.1 parsing (arbitrary byte soup never panics
//!   and never hangs a connection; proptest-pinned).
//! - [`flight`] — flight-recorder dump triggers and artifacts.
//! - [`journal`] — the batch journal format and its parse/serialize
//!   round-trip.
//! - [`tenant`] — per-tenant config, queue, worker thread, snapshots.
//! - [`api`] — the registry and request routing.
//! - [`server`] — accept loop, connection queue, reused worker pool.
//! - [`client`] — a minimal blocking client for load generators & tests.
//!
//! [`DriverSession`]: saga_core::driver::DriverSession

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod client;
pub mod flight;
pub mod http;
pub mod journal;
pub mod server;
pub mod tenant;

pub use api::Registry;
pub use client::{Client, ClientResponse};
pub use server::{Server, ServerConfig};
pub use tenant::{Tenant, TenantConfig};
