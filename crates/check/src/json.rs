//! A minimal JSON reader for checked baselines.
//!
//! The suite's benchmark results (`results/BENCH_update.json`) are plain
//! JSON; the container has no `serde_json`, so this module hand-rolls the
//! small recursive-descent parser the baseline tests need. It supports the
//! full JSON value grammar (objects, arrays, strings with escapes, numbers
//! with sign/fraction/exponent, booleans, null) and nothing more — no
//! serialization, no zero-copy, no streaming.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` on other variants or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos} (found {:?})",
            c as char,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}' at byte {pos}, found {other:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' at byte {pos}, found {other:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed for the suite's
                        // ASCII result files; reject rather than mangle.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("unsupported \\u{code:04x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the full scalar.
                let start = *pos - 1;
                let width = utf8_width(c);
                *pos = start + width;
                let s = b
                    .get(start..start + width)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(s);
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let doc = r#"{"benchmark":"x","reps":5,"results":[{"structure":"AC","threads":8,"speedup":5.268,"ok":true,"note":null}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("reps").unwrap().as_usize(), Some(5));
        let rows = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("structure").unwrap().as_str(), Some("AC"));
        assert_eq!(rows[0].get("speedup").unwrap().as_f64(), Some(5.268));
        assert_eq!(rows[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(rows[0].get("note"), Some(&Json::Null));
    }

    #[test]
    fn numbers_cover_sign_fraction_exponent() {
        assert_eq!(parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
        assert_eq!(parse("1E-3").unwrap().as_f64(), Some(0.001));
    }

    #[test]
    fn strings_decode_escapes() {
        let v = parse(r#""a\n\t\"\\A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
