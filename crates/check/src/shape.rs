//! Shape assertions: the EXPERIMENTS.md scorecard as code.
//!
//! The paper's claims are *shapes*, not absolute numbers — "AS is fastest
//! in phase 1", "FS and INC cross over as batches shrink", "the update
//! phase is under a third of batch latency". These helpers (and their
//! macro forms) assert those shapes over measurements from scaled-down
//! re-runs of the experiment suite, so `cargo test` fails when a paper
//! claim regresses instead of a results file silently rotting.

/// Asserts that labeled values are non-decreasing in the given order.
/// Returns an error describing the first inversion.
pub fn check_ordering(context: &str, entries: &[(&str, f64)]) -> Result<(), String> {
    for pair in entries.windows(2) {
        let (la, va) = pair[0];
        let (lb, vb) = pair[1];
        // NaN must fail too, so "not less-or-equal" rather than "greater".
        let ok = matches!(
            va.partial_cmp(&vb),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !ok {
            return Err(format!(
                "{context}: expected {la} <= {lb}, got {la}={va} {lb}={vb} (full: {entries:?})"
            ));
        }
    }
    Ok(())
}

/// Asserts `lo <= value <= hi`. Returns an error naming the bound missed.
pub fn check_ratio_within(context: &str, value: f64, lo: f64, hi: f64) -> Result<(), String> {
    if !value.is_finite() {
        return Err(format!("{context}: value {value} is not finite"));
    }
    if value < lo {
        return Err(format!("{context}: {value} below lower bound {lo}"));
    }
    if value > hi {
        return Err(format!("{context}: {value} above upper bound {hi}"));
    }
    Ok(())
}

/// Asserts that series `a` starts at or below series `b` and ends strictly
/// above it — i.e. the two curves cross over somewhere in between (the
/// Fig. 6 FS/INC batch-size crossover, the tail-sweep partitioning
/// crossover). Both series must be sampled at the same `xs`.
pub fn check_crossover(
    context: &str,
    xs: &[f64],
    a: &[f64],
    b: &[f64],
) -> Result<(), String> {
    if xs.len() != a.len() || xs.len() != b.len() || xs.len() < 2 {
        return Err(format!(
            "{context}: series must share >= 2 sample points (got {}, {}, {})",
            xs.len(),
            a.len(),
            b.len()
        ));
    }
    let (first_a, first_b) = (a[0], b[0]);
    let (last_a, last_b) = (*a.last().unwrap(), *b.last().unwrap());
    if first_a > first_b {
        return Err(format!(
            "{context}: series A must start at or below B at x={}: A={first_a} B={first_b}",
            xs[0]
        ));
    }
    if last_a <= last_b {
        return Err(format!(
            "{context}: series A must end above B at x={}: A={last_a} B={last_b}",
            xs.last().unwrap()
        ));
    }
    Ok(())
}

/// Asserts labeled values are non-decreasing in the stated order.
///
/// ```
/// saga_check::assert_ordering!("phase ordering", [("AS", 1.0), ("AC", 1.5), ("DAH", 4.0)]);
/// ```
#[macro_export]
macro_rules! assert_ordering {
    ($context:expr, [$(($label:expr, $value:expr)),+ $(,)?]) => {
        if let Err(e) = $crate::shape::check_ordering($context, &[$(($label, f64::from($value))),+]) {
            panic!("{e}");
        }
    };
}

/// Asserts a scalar (typically a ratio) lies inside `[lo, hi]`.
///
/// ```
/// saga_check::assert_ratio_within!("FS/INC", 3.2, 1.5, 100.0);
/// ```
#[macro_export]
macro_rules! assert_ratio_within {
    ($context:expr, $value:expr, $lo:expr, $hi:expr) => {
        if let Err(e) = $crate::shape::check_ratio_within($context, $value, $lo, $hi) {
            panic!("{e}");
        }
    };
}

/// Asserts two series cross over: A starts at or below B and ends above it.
///
/// ```
/// saga_check::assert_crossover!("crossover", &[1.0, 2.0], &[0.5, 3.0], &[1.0, 1.0]);
/// ```
#[macro_export]
macro_rules! assert_crossover {
    ($context:expr, $xs:expr, $a:expr, $b:expr) => {
        if let Err(e) = $crate::shape::check_crossover($context, $xs, $a, $b) {
            panic!("{e}");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_accepts_sorted_and_names_the_inversion() {
        assert!(check_ordering("ok", &[("a", 1.0), ("b", 1.0), ("c", 2.0)]).is_ok());
        let err = check_ordering("bad", &[("a", 2.0), ("b", 1.0)]).unwrap_err();
        assert!(err.contains("expected a <= b"), "{err}");
    }

    #[test]
    fn ratio_bounds_are_inclusive() {
        assert!(check_ratio_within("r", 2.0, 2.0, 2.0).is_ok());
        assert!(check_ratio_within("r", 1.99, 2.0, 3.0).is_err());
        assert!(check_ratio_within("r", f64::NAN, 0.0, 1.0).is_err());
    }

    #[test]
    fn crossover_requires_a_sign_flip() {
        let xs = [1.0, 2.0, 3.0];
        assert!(check_crossover("x", &xs, &[0.5, 1.0, 3.0], &[1.0, 1.0, 1.0]).is_ok());
        assert!(check_crossover("x", &xs, &[2.0, 3.0, 4.0], &[1.0, 1.0, 1.0]).is_err());
        assert!(check_crossover("x", &xs, &[0.1, 0.2, 0.3], &[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn macros_pass_through() {
        assert_ordering!("m", [("x", 1.0), ("y", 2.0)]);
        assert_ratio_within!("m", 1.5, 1.0, 2.0);
        assert_crossover!("m", &[0.0, 1.0], &[0.0, 2.0], &[1.0, 1.0]);
    }
}
