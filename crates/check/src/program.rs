//! Op programs: the input language of the differential fuzzer.
//!
//! A program is a batched sequence of insert/delete operations over a
//! small vertex universe. Programs are generated from a seed and an
//! adversarial [`ProgramProfile`], converted to an [`EdgeStream`] (weights
//! derived deterministically from endpoints so every structure agrees),
//! and replayed differentially across every structure × driver × compute
//! model combination by [`crate::check_program`].

use rand::Rng;
use rand_xoshiro::rand_core::{RngCore, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

/// Uniform draw from the inclusive range `[lo, hi]`.
///
/// Implemented directly over the raw generator (unbiased rejection of the
/// wrap-around remainder zone) so program generation depends only on the
/// xoshiro stream, not on any particular `rand` sampling algorithm.
fn range(rng: &mut Xoshiro256PlusPlus, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi, "inclusive range needs lo <= hi");
    let span = (hi - lo) as u64 + 1;
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return (lo as u64 + x % span) as usize;
        }
    }
}

/// Bernoulli draw with probability `p`.
fn chance(rng: &mut Xoshiro256PlusPlus, p: f64) -> bool {
    rng.gen::<f64>() < p
}
use saga_graph::Node;
use saga_stream::{edge_weight, Edge, EdgeOp, EdgeStream};
use std::fmt::Write as _;

/// One operation of a program: the op kind plus the edge endpoints.
/// Weights are never stored — they are a deterministic function of the
/// endpoints ([`edge_weight`]), so a program is purely structural.
pub type ProgramOp = (EdgeOp, Node, Node);

/// Adversarial distribution the program generator draws from. Each profile
/// targets a failure class seen in streaming-graph ingestion engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramProfile {
    /// Uniformly random endpoints, light deletion mix — the baseline.
    Uniform,
    /// Half of all endpoints collapse onto two hub vertices, stressing
    /// per-vertex locking and chunk-overflow paths (Table IV tails).
    HubConcentrated,
    /// Close to half the ops are deletions, preferentially of live edges —
    /// stresses compaction and KickStarter-style repair.
    DeleteHeavy,
    /// Edges cycle insert → delete → re-insert, stressing tombstone reuse
    /// and duplicate-vs-resurrect confusion.
    ReinsertAfterDelete,
    /// A tiny endpoint pool so most inserts are duplicates, including
    /// duplicates within one batch — stresses §III-A dedup semantics.
    DuplicateDense,
    /// Sliding-window shape: each batch inserts fresh edges and evicts the
    /// batch that fell out of the window, exactly like
    /// [`EdgeStream::into_sliding_window`].
    WindowEviction,
}

impl ProgramProfile {
    /// Every profile, for seed-rotation loops.
    pub const ALL: [ProgramProfile; 6] = [
        ProgramProfile::Uniform,
        ProgramProfile::HubConcentrated,
        ProgramProfile::DeleteHeavy,
        ProgramProfile::ReinsertAfterDelete,
        ProgramProfile::DuplicateDense,
        ProgramProfile::WindowEviction,
    ];
}

/// A generated (or shrunk) op program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProgram {
    /// Vertex universe `0..capacity`.
    pub capacity: usize,
    /// Whether the graph under test is directed.
    pub directed: bool,
    /// Batches of ops; every batch is non-empty.
    pub batches: Vec<Vec<ProgramOp>>,
}

impl OpProgram {
    /// Generates a program from a seed and profile. Programs are small by
    /// design (≤ 6 batches × ≤ 40 ops over ≤ 48 vertices): the fuzzer's
    /// power comes from running many seeds, not big inputs.
    pub fn generate(seed: u64, profile: ProgramProfile) -> OpProgram {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let capacity = match profile {
            ProgramProfile::DuplicateDense => range(&mut rng, 4, 10),
            _ => range(&mut rng, 8, 48),
        };
        let directed = chance(&mut rng, 0.5);
        let num_batches = range(&mut rng, 1, 5);
        let batches = match profile {
            ProgramProfile::WindowEviction => {
                gen_window_eviction(&mut rng, capacity, num_batches)
            }
            _ => gen_mixed(&mut rng, profile, capacity, num_batches),
        };
        OpProgram {
            capacity,
            directed,
            batches,
        }
    }

    /// Generates a program over a *fixed* vertex universe and
    /// directedness, for callers that need many seeded programs against
    /// one graph — the server load generator drives every stream of a
    /// tenant with programs shaped by the tenant's own capacity. Batch
    /// shapes draw from the same per-profile generators as
    /// [`OpProgram::generate`]; only the universe is pinned. (Seeds are
    /// not interchangeable between the two constructors: `generate`
    /// spends rng draws choosing the universe first.)
    pub fn generate_with(
        seed: u64,
        profile: ProgramProfile,
        capacity: usize,
        directed: bool,
    ) -> OpProgram {
        assert!(capacity >= 4, "programs need at least 4 vertices");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let num_batches = range(&mut rng, 1, 5);
        let batches = match profile {
            ProgramProfile::WindowEviction => {
                gen_window_eviction(&mut rng, capacity, num_batches)
            }
            _ => gen_mixed(&mut rng, profile, capacity, num_batches),
        };
        OpProgram {
            capacity,
            directed,
            batches,
        }
    }

    /// Builds a program from explicit batches — the form emitted by
    /// [`OpProgram::to_test_snippet`] for shrunk reproducers.
    ///
    /// # Panics
    ///
    /// Panics if any batch is empty or any endpoint is out of range.
    pub fn from_ops(capacity: usize, directed: bool, batches: &[&[ProgramOp]]) -> OpProgram {
        for batch in batches {
            assert!(!batch.is_empty(), "batches must be non-empty");
            for &(_, s, d) in *batch {
                assert!(
                    (s as usize) < capacity && (d as usize) < capacity,
                    "endpoint out of range"
                );
            }
        }
        OpProgram {
            capacity,
            directed,
            batches: batches.iter().map(|b| b.to_vec()).collect(),
        }
    }

    /// Total op count across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Materializes the program as an [`EdgeStream`] with explicit batch
    /// boundaries and endpoint-derived weights.
    pub fn to_stream(&self) -> EdgeStream {
        let mut edges = Vec::with_capacity(self.total_ops());
        let mut ops = Vec::with_capacity(self.total_ops());
        let mut boundaries = Vec::with_capacity(self.batches.len());
        for batch in &self.batches {
            for &(op, s, d) in batch {
                edges.push(Edge::new(s, d, edge_weight(s, d, self.directed)));
                ops.push(op);
            }
            boundaries.push(edges.len());
        }
        let suggested_batch_size = edges.len().max(1);
        EdgeStream {
            name: "op-program".into(),
            num_nodes: self.capacity,
            directed: self.directed,
            edges,
            ops,
            boundaries,
            suggested_batch_size,
        }
    }

    /// Renders the program as a ready-to-paste Rust `#[test]` so a shrunk
    /// counterexample survives as a permanent regression test.
    pub fn to_test_snippet(&self, test_name: &str, config_expr: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "#[test]");
        let _ = writeln!(out, "fn {test_name}() {{");
        let _ = writeln!(out, "    use saga_check::{{check_program, OpProgram}};");
        let _ = writeln!(out, "    use saga_stream::EdgeOp::{{Delete, Insert}};");
        let _ = writeln!(
            out,
            "    let program = OpProgram::from_ops({}, {}, &[",
            self.capacity, self.directed
        );
        for batch in &self.batches {
            let ops: Vec<String> = batch
                .iter()
                .map(|&(op, s, d)| {
                    let kind = match op {
                        EdgeOp::Insert => "Insert",
                        EdgeOp::Delete => "Delete",
                    };
                    format!("({kind}, {s}, {d})")
                })
                .collect();
            let _ = writeln!(out, "        &[{}],", ops.join(", "));
        }
        let _ = writeln!(out, "    ]);");
        let _ = writeln!(out, "    let config = {config_expr};");
        let _ = writeln!(
            out,
            "    assert!(check_program(&program, &config).is_none());"
        );
        let _ = writeln!(out, "}}");
        out
    }
}

/// Draws an endpoint pair (never a self-loop).
fn pair(rng: &mut Xoshiro256PlusPlus, capacity: usize, hubs: &[Node]) -> (Node, Node) {
    let draw = |rng: &mut Xoshiro256PlusPlus| -> Node {
        if !hubs.is_empty() && chance(rng, 0.5) {
            hubs[range(rng, 0, hubs.len() - 1)]
        } else {
            range(rng, 0, capacity - 1) as Node
        }
    };
    loop {
        let s = draw(rng);
        let d = draw(rng);
        if s != d {
            return (s, d);
        }
    }
}

fn gen_mixed(
    rng: &mut Xoshiro256PlusPlus,
    profile: ProgramProfile,
    capacity: usize,
    num_batches: usize,
) -> Vec<Vec<ProgramOp>> {
    let hubs: Vec<Node> = match profile {
        ProgramProfile::HubConcentrated => {
            vec![
                range(rng, 0, capacity - 1) as Node,
                range(rng, 0, capacity - 1) as Node,
            ]
        }
        _ => Vec::new(),
    };
    let delete_prob = match profile {
        ProgramProfile::DeleteHeavy => 0.45,
        ProgramProfile::ReinsertAfterDelete => 0.35,
        _ => 0.15,
    };
    // Edges inserted so far (may contain already-deleted entries — those
    // model reinsert-after-delete and deletes of absent edges).
    let mut inserted: Vec<(Node, Node)> = Vec::new();
    let mut deleted: Vec<(Node, Node)> = Vec::new();
    let mut batches = Vec::with_capacity(num_batches);
    for _ in 0..num_batches {
        let ops_in_batch = range(rng, 1, 40);
        let mut batch = Vec::with_capacity(ops_in_batch);
        for _ in 0..ops_in_batch {
            if chance(rng, delete_prob) && !inserted.is_empty() {
                // Delete: usually a previously inserted edge, sometimes a
                // random (likely absent) one to exercise `missing`.
                let (s, d) = if chance(rng, 0.8) {
                    inserted[range(rng, 0, inserted.len() - 1)]
                } else {
                    pair(rng, capacity, &hubs)
                };
                deleted.push((s, d));
                batch.push((EdgeOp::Delete, s, d));
            } else {
                let reuse_deleted = profile == ProgramProfile::ReinsertAfterDelete
                    && !deleted.is_empty()
                    && chance(rng, 0.6);
                let (s, d) = if reuse_deleted {
                    deleted[range(rng, 0, deleted.len() - 1)]
                } else {
                    pair(rng, capacity, &hubs)
                };
                inserted.push((s, d));
                batch.push((EdgeOp::Insert, s, d));
            }
        }
        batches.push(batch);
    }
    batches
}

/// Window-eviction shape: batch `i` inserts fresh edges and deletes batch
/// `i - window`'s inserts, mirroring [`EdgeStream::into_sliding_window`].
fn gen_window_eviction(
    rng: &mut Xoshiro256PlusPlus,
    capacity: usize,
    num_batches: usize,
) -> Vec<Vec<ProgramOp>> {
    let window = range(rng, 1, 2.min(num_batches));
    let mut fresh: Vec<Vec<(Node, Node)>> = Vec::with_capacity(num_batches);
    for _ in 0..num_batches {
        let n = range(rng, 1, 20);
        fresh.push((0..n).map(|_| pair(rng, capacity, &[])).collect());
    }
    let mut batches = Vec::with_capacity(num_batches);
    for i in 0..num_batches {
        let mut batch: Vec<ProgramOp> = fresh[i]
            .iter()
            .map(|&(s, d)| (EdgeOp::Insert, s, d))
            .collect();
        if i >= window {
            batch.extend(
                fresh[i - window]
                    .iter()
                    .map(|&(s, d)| (EdgeOp::Delete, s, d)),
            );
        }
        batches.push(batch);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for profile in ProgramProfile::ALL {
            let a = OpProgram::generate(42, profile);
            let b = OpProgram::generate(42, profile);
            assert_eq!(a, b, "{profile:?}");
            assert!(a.total_ops() > 0);
            assert!(a.batches.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn streams_carry_boundaries_and_derived_weights() {
        let p = OpProgram::generate(7, ProgramProfile::DeleteHeavy);
        let s = p.to_stream();
        assert_eq!(s.edges.len(), p.total_ops());
        assert_eq!(s.ops.len(), p.total_ops());
        assert_eq!(s.boundaries.len(), p.batches.len());
        assert_eq!(*s.boundaries.last().unwrap(), s.edges.len());
        for e in &s.edges {
            assert_eq!(e.weight, edge_weight(e.src, e.dst, s.directed));
        }
    }

    #[test]
    fn window_eviction_deletes_only_prior_inserts() {
        let p = OpProgram::generate(3, ProgramProfile::WindowEviction);
        let mut seen: Vec<(Node, Node)> = Vec::new();
        for batch in &p.batches {
            for &(op, s, d) in batch {
                match op {
                    EdgeOp::Insert => seen.push((s, d)),
                    EdgeOp::Delete => assert!(seen.contains(&(s, d))),
                }
            }
        }
    }

    #[test]
    fn snippet_round_trips_through_from_ops() {
        let p = OpProgram::from_ops(
            8,
            true,
            &[&[(EdgeOp::Insert, 0, 1), (EdgeOp::Delete, 0, 1)], &[(EdgeOp::Delete, 2, 3)]],
        );
        let snippet = p.to_test_snippet("repro", "CheckConfig::quick()");
        assert!(snippet.contains("OpProgram::from_ops(8, true"));
        assert!(snippet.contains("(Insert, 0, 1), (Delete, 0, 1)"));
        assert!(snippet.contains("(Delete, 2, 3)"));
    }
}
