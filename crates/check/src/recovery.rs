//! Kill-and-recover differential harness for the sharded BSP path.
//!
//! For one op program the harness replays the stream once, driving three
//! compute states over the same live graph:
//!
//! * the **serial oracle** ([`AlgorithmState`]) — the trusted pull-based
//!   path the rest of `saga-check` differentials against;
//! * an **uninterrupted** sharded BSP state;
//! * a **victim** sharded BSP state with a one-shot [`KillSpec`] armed,
//!   which dies mid-superstep, recovers from the last superstep-boundary
//!   checkpoint, and replays.
//!
//! After every batch the victim must match the uninterrupted twin
//! **bitwise** (recovery restores total state and the mailbox drain order
//! is deterministic — DESIGN.md §12), and the twin must match the serial
//! oracle within the usual per-type tolerances. At end of stream the kill
//! must actually have fired; a harness whose fault never triggers proves
//! nothing.

use crate::diff::{params, values_diff};
use crate::program::OpProgram;
use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmState, ComputeModelKind,
};
use saga_bsp::{CheckpointConfig, KillSpec, ShardedState};
use saga_graph::{build_deletable_graph, DataStructureKind, Edge};
use saga_stream::EdgeOp;
use saga_utils::parallel::ThreadPool;

/// Configuration of one kill-and-recover check.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Algorithm under test.
    pub algorithm: AlgorithmKind,
    /// Compute model (FS always full-runs; INC seeds from affected).
    pub model: ComputeModelKind,
    /// Data structure backing the live graph.
    pub structure: DataStructureKind,
    /// Shard count for both BSP states.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// The fault. Armed once, before the first batch; it fires in the
    /// first run that reaches its superstep/shard/phase coordinates.
    pub kill: KillSpec,
}

/// Replays `program` per the harness contract above. Returns the first
/// disagreement found, or `None` when the killed-and-recovered state is
/// bitwise identical to the uninterrupted one (and both track the serial
/// oracle) on every batch.
pub fn check_recovery(program: &OpProgram, config: &RecoveryConfig) -> Option<String> {
    let stream = program.to_stream();
    let root = stream.edges.first().map(|e| e.src).unwrap_or(0);
    let pool = ThreadPool::new(config.threads);
    let graph = build_deletable_graph(
        config.structure,
        program.capacity,
        program.directed,
        pool.threads(),
    );
    let params = params(root);
    let mut serial = AlgorithmState::new(config.algorithm, config.model, program.capacity, params);
    let make_sharded = || {
        ShardedState::new(
            config.algorithm,
            config.model,
            program.capacity,
            config.shards,
            params,
            CheckpointConfig::default(),
        )
    };
    let mut baseline = make_sharded();
    let mut victim = make_sharded();
    victim.inject_kill(config.kill);
    let mut tracker = AffectedTracker::new(program.capacity);
    let incremental = config.model == ComputeModelKind::Incremental;

    for (index, batch) in program.batches.iter().enumerate() {
        let mut inserts: Vec<Edge> = Vec::new();
        let mut deletes: Vec<Edge> = Vec::new();
        for &(op, s, d) in batch {
            let e = Edge::new(s, d, saga_stream::edge_weight(s, d, program.directed));
            match op {
                EdgeOp::Insert => inserts.push(e),
                EdgeOp::Delete => deletes.push(e),
            }
        }
        graph.update_batch(&inserts, &pool);
        if !deletes.is_empty() {
            graph.delete_batch(&deletes, &pool);
        }
        let impact = if incremental {
            tracker.process_mixed_batch(
                graph.as_ref(),
                &inserts,
                &deletes,
                serial.affects_source_neighborhood(),
                serial.symmetric_scope(),
                &pool,
            )
        } else {
            Default::default()
        };
        serial.perform_alg_with_deletions(
            graph.as_ref(),
            &impact.affected,
            &impact.new_vertices,
            &deletes,
            &pool,
        );
        let had_deletes = !deletes.is_empty();
        baseline.perform_batch(graph.as_ref(), &impact.affected, had_deletes, &pool);
        victim.perform_batch(graph.as_ref(), &impact.affected, had_deletes, &pool);
        // The recovery contract is exact: restored state + deterministic
        // replay ⇒ no float tolerance, even for PR/SSSP/SSWP.
        if victim.values() != baseline.values() {
            let detail = values_diff(&baseline.values(), &victim.values())
                .unwrap_or_else(|| "values differ only in float bit patterns".into());
            return Some(format!(
                "batch {index}: recovered run diverged from uninterrupted run: {detail}"
            ));
        }
        if let Some(detail) = values_diff(&serial.values(), &baseline.values()) {
            return Some(format!(
                "batch {index}: sharded BSP diverged from serial oracle: {detail}"
            ));
        }
    }
    if victim.recoveries() == 0 {
        return Some(format!(
            "kill {:?} never fired — the check was vacuous",
            config.kill
        ));
    }
    None
}
