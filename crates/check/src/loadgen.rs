//! Seeded adversarial load generation against a live `saga-server`, and
//! offline differential verification of what the server admitted.
//!
//! The generator replays [`OpProgram`]s — the same six adversarial
//! profiles the differential fuzzer draws from — as N concurrent HTTP
//! client streams per tenant, retrying on `429` (admission-control
//! backpressure) until each batch is accepted. The server journals every
//! admitted batch in application order; [`verify_tenant`] then fetches
//! that journal and replays it offline:
//!
//! - topology through [`GraphOracle`], diffed against the server's
//!   `/edges` dump (exact), and
//! - values through a single-threaded from-scratch [`StreamDriver`]
//!   reference, diffed against `/values` with [`values_diff`]'s
//!   per-type tolerances.
//!
//! Zero diffs means the server processed exactly what it admitted —
//! the soak test's acceptance bar (DESIGN.md §13).

use crate::diff::values_diff;
use crate::program::{OpProgram, ProgramProfile};
use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_core::driver::StreamDriver;
use saga_graph::oracle::GraphOracle;
use saga_graph::DataStructureKind;
use saga_server::journal::{journal_root, parse_journal, JournalBatch};
use saga_server::tenant::{parse_edge_list, parse_values, tenant_params};
use saga_server::Client;
use saga_stream::loader::render_edge_line;
use saga_stream::{edge_weight, Edge, EdgeOp};
use saga_utils::parallel::ThreadPool;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One tenant's place in the structure × algorithm × model matrix, plus
/// its load shape.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (also the HTTP path segment).
    pub name: String,
    /// Graph structure behind the tenant.
    pub structure: DataStructureKind,
    /// Algorithm the tenant runs per batch.
    pub algorithm: AlgorithmKind,
    /// From-scratch or incremental.
    pub model: ComputeModelKind,
    /// Directedness (shared by generator, server, and replay).
    pub directed: bool,
    /// Vertex universe.
    pub capacity: usize,
    /// Admission bound for the tenant's batch queue.
    pub queue_bound: usize,
    /// Adversarial program profile the streams draw from.
    pub profile: ProgramProfile,
    /// Base seed; stream `s`, round `r` derives its program seed from
    /// `(seed, s, r)` deterministically.
    pub seed: u64,
    /// Concurrent client streams.
    pub streams: usize,
}

impl TenantSpec {
    /// The `i`-th point of a rotation through the full matrix: structures
    /// × algorithms × models × profiles × directedness all cycle at
    /// coprime-ish strides so small fleets still cover FS and INC, every
    /// structure, and several algorithms.
    pub fn nth(i: usize, seed: u64) -> TenantSpec {
        let structures = DataStructureKind::ALL_WITH_DELTA;
        let algorithms = AlgorithmKind::ALL;
        let models = ComputeModelKind::ALL;
        let profiles = ProgramProfile::ALL;
        TenantSpec {
            name: format!("soak-{i}"),
            structure: structures[i % structures.len()],
            algorithm: algorithms[i % algorithms.len()],
            model: models[i % models.len()],
            directed: (i / 2).is_multiple_of(2),
            capacity: 32 + 8 * (i % 3),
            queue_bound: 2 + i % 3,
            profile: profiles[i % profiles.len()],
            seed: seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            streams: 4,
        }
    }

    /// The `key=value` body for `POST /tenants`.
    pub fn config_body(&self) -> String {
        format!(
            "name={}\nstructure={}\nalgorithm={}\nmodel={}\ncapacity={}\n\
             directed={}\nqueue_bound={}\nthreads=2\n",
            self.name,
            structure_key(self.structure),
            self.algorithm.abbrev().to_ascii_lowercase(),
            self.model.abbrev().to_ascii_lowercase(),
            self.capacity,
            self.directed,
            self.queue_bound,
        )
    }

    /// The program stream `s` submits in round `r` — a pure function of
    /// the spec, which is what makes a single-stream run's journal
    /// byte-reproducible.
    pub fn program(&self, stream: usize, round: u64) -> OpProgram {
        let seed = self
            .seed
            .wrapping_add((stream as u64).wrapping_mul(0x517C_C1B7_2722_0A95))
            .wrapping_add(round.wrapping_mul(0x2545_F491_4F6C_DD1D));
        OpProgram::generate_with(seed, self.profile, self.capacity, self.directed)
    }
}

fn structure_key(s: DataStructureKind) -> &'static str {
    match s {
        DataStructureKind::AdjacencyShared => "as",
        DataStructureKind::AdjacencyChunked => "ac",
        DataStructureKind::Stinger => "stinger",
        DataStructureKind::Dah => "dah",
        DataStructureKind::DeltaCsr => "delta-csr",
    }
}

/// Renders one program batch as the wire-format lines `POST .../batches`
/// accepts (canonical spelling, explicit weights).
pub fn render_batch(ops: &[(EdgeOp, saga_stream::Node, saga_stream::Node)], directed: bool) -> String {
    let mut body = String::new();
    for &(op, s, d) in ops {
        let edge = Edge::new(s, d, edge_weight(s, d, directed));
        body.push_str(&render_edge_line(&edge, op));
        body.push('\n');
    }
    body
}

/// What a load run against one tenant observed.
#[derive(Debug, Default, Clone, Copy)]
pub struct DriveReport {
    /// Batches accepted (`202`) across all streams and rounds.
    pub accepted: usize,
    /// `429` responses absorbed by retry — the backpressure observations.
    pub rejected_429: usize,
    /// Largest post-admission queue depth any `202` reported.
    pub max_depth: usize,
}

impl DriveReport {
    /// Merges another report into this one (depth takes the max).
    pub fn merge(&mut self, other: DriveReport) {
        self.accepted += other.accepted;
        self.rejected_429 += other.rejected_429;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Creates the tenant on the server.
///
/// # Errors
///
/// I/O failures and non-`201` responses come back as messages.
pub fn create_tenant(addr: SocketAddr, spec: &TenantSpec) -> Result<(), String> {
    let mut client = Client::new(addr);
    let resp = client
        .post("/tenants", &spec.config_body())
        .map_err(|e| format!("create {}: {e}", spec.name))?;
    if resp.status != 201 {
        return Err(format!("create {}: {} {}", spec.name, resp.status, resp.text()));
    }
    Ok(())
}

/// Drives `spec.streams` concurrent clients against the tenant until
/// `deadline` (always completing at least one full round each), retrying
/// rejected batches until admission.
///
/// # Panics
///
/// Panics if the server answers anything other than `202`/`429` for a
/// batch — in a load test that is a harness bug worth dying loudly for.
pub fn drive_tenant(addr: SocketAddr, spec: &TenantSpec, deadline: Instant) -> DriveReport {
    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let max_depth = AtomicUsize::new(0);
    let pool = ThreadPool::new(spec.streams.max(1));
    pool.run_on_all(|stream_idx| {
        let mut client = Client::new(addr);
        let mut round = 0u64;
        loop {
            let program = spec.program(stream_idx, round);
            for batch in &program.batches {
                let body = render_batch(batch, spec.directed);
                loop {
                    let resp = client
                        .post(&format!("/tenants/{}/batches", spec.name), &body)
                        .unwrap_or_else(|e| panic!("{}: submit failed: {e}", spec.name));
                    match resp.status {
                        202 => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let depth: usize = resp
                                .text()
                                .trim()
                                .strip_prefix("depth ")
                                .and_then(|d| d.parse().ok())
                                .unwrap_or(0);
                            max_depth.fetch_max(depth, Ordering::Relaxed);
                            break;
                        }
                        429 => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(1 + stream_idx as u64));
                        }
                        other => panic!(
                            "{}: unexpected status {other} for batch: {}",
                            spec.name,
                            resp.text()
                        ),
                    }
                }
            }
            round += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    });
    DriveReport {
        accepted: accepted.load(Ordering::Relaxed),
        rejected_429: rejected.load(Ordering::Relaxed),
        max_depth: max_depth.load(Ordering::Relaxed),
    }
}

/// What offline verification established for one tenant.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Batches the journal recorded.
    pub batches: usize,
    /// Total ops across those batches.
    pub ops: usize,
    /// Final logical edge count (oracle == server, asserted).
    pub final_edges: usize,
}

/// Fetches the tenant's journal, `/edges`, and `/values`, replays the
/// journal offline, and diffs both topology and values.
///
/// # Errors
///
/// Any divergence — topology row, value, or edge count — comes back as a
/// message naming the tenant and the first mismatch.
pub fn verify_tenant(addr: SocketAddr, spec: &TenantSpec) -> Result<VerifyReport, String> {
    let mut client = Client::new(addr);
    let fetch = |client: &mut Client, path: &str| -> Result<String, String> {
        let resp = client
            .get(path)
            .map_err(|e| format!("{}: GET {path}: {e}", spec.name))?;
        if resp.status != 200 {
            return Err(format!("{}: GET {path}: {}", spec.name, resp.status));
        }
        Ok(resp.text())
    };

    // The journal endpoint takes a snapshot barrier first, so everything
    // admitted before this request is covered; edges/values dumps taken
    // after see at least that prefix (the drive has finished, so exactly
    // that prefix).
    let journal_text = fetch(&mut client, &format!("/tenants/{}/journal", spec.name))?;
    let edges_text = fetch(&mut client, &format!("/tenants/{}/edges", spec.name))?;
    let values_text = fetch(&mut client, &format!("/tenants/{}/values", spec.name))?;

    let batches = parse_journal(&journal_text, spec.directed)
        .map_err(|e| format!("{}: journal: {e}", spec.name))?;
    if batches.is_empty() {
        return Err(format!("{}: journal is empty after load", spec.name));
    }
    verify_against_dumps(spec, &batches, &edges_text, &values_text)
}

/// The replay core, shared by [`verify_tenant`] and the reproducibility
/// check: replays `batches` through the oracle and a from-scratch driver
/// reference, diffing against the server's dumps.
///
/// # Errors
///
/// Returns the first divergence as a message.
pub fn verify_against_dumps(
    spec: &TenantSpec,
    batches: &[JournalBatch],
    edges_text: &str,
    values_text: &str,
) -> Result<VerifyReport, String> {
    // Topology: oracle replay vs the server's /edges dump, exact.
    let mut oracle = GraphOracle::new(spec.capacity, spec.directed);
    for b in batches {
        let (inserts, deletes) = b.split();
        oracle.apply_batch(&inserts, &deletes);
    }
    let expected = oracle.edge_list();
    let got = parse_edge_list(edges_text).map_err(|e| format!("{}: edges: {e}", spec.name))?;
    if expected != got {
        let at = expected
            .iter()
            .zip(got.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(got.len()));
        return Err(format!(
            "{}: topology diverges (oracle {} rows, server {} rows; first mismatch at row {at}: \
             oracle {:?} vs server {:?})",
            spec.name,
            expected.len(),
            got.len(),
            expected.get(at),
            got.get(at),
        ));
    }

    // Values: from-scratch single-threaded reference on the journal vs
    // the server's /values dump, within the differential tolerances. The
    // reference structure is deliberately NOT the tenant's (AS here) so
    // agreement also crosses structures, like the fuzzer's matrix.
    let root = journal_root(batches);
    let driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, spec.capacity)
        .algorithm(spec.algorithm)
        .compute_model(ComputeModelKind::FromScratch)
        .threads(1)
        .root(root)
        .params(tenant_params(root))
        .build();
    let mut session = driver.session(spec.capacity, spec.directed, root);
    for b in batches {
        let (inserts, deletes) = b.split();
        session.step(&inserts, &deletes);
    }
    let reference = session.values();
    let server_values =
        parse_values(values_text).map_err(|e| format!("{}: values: {e}", spec.name))?;
    if let Some(diff) = values_diff(&reference, &server_values) {
        return Err(format!(
            "{}: values diverge from FS replay ({} {} on {:?}): {diff}",
            spec.name, spec.algorithm, spec.model, spec.structure
        ));
    }

    Ok(VerifyReport {
        batches: batches.len(),
        ops: batches.iter().map(|b| b.ops.len()).sum(),
        final_edges: expected.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_server::{Server, ServerConfig};

    #[test]
    fn single_tenant_load_verify_round_trip() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let spec = TenantSpec {
            name: "lg-unit".to_string(),
            structure: DataStructureKind::Stinger,
            algorithm: AlgorithmKind::Cc,
            model: ComputeModelKind::Incremental,
            directed: false,
            capacity: 32,
            queue_bound: 2,
            profile: ProgramProfile::DeleteHeavy,
            seed: 7,
            streams: 2,
        };
        create_tenant(server.addr(), &spec).unwrap();
        let report = drive_tenant(server.addr(), &spec, Instant::now());
        assert!(report.accepted >= 1);
        let verify = verify_tenant(server.addr(), &spec).unwrap();
        assert_eq!(verify.batches, report.accepted);
        server.shutdown();
    }

    #[test]
    fn seeded_programs_are_reproducible() {
        let spec = TenantSpec::nth(3, 42);
        assert_eq!(spec.program(0, 0), spec.program(0, 0));
        assert_ne!(spec.program(0, 0), spec.program(1, 0));
        assert_ne!(spec.program(0, 0), spec.program(0, 1));
    }
}
