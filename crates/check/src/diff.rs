//! The differential checker: one program, every implementation.
//!
//! A program's ground truth is computed once from the [`GraphOracle`]
//! (a `BTreeMap` reference structure): per-batch insert/delete stats, a
//! per-batch edge-list snapshot, and per-batch from-scratch property
//! values on a [`Csr`] built from that snapshot. Every structure × driver
//! × compute-model combination is then replayed against that model,
//! comparing per-batch [`BatchRecord`](saga_core::driver::BatchRecord)
//! counts, per-batch property values, and the final topology.

use crate::program::OpProgram;
use saga_algorithms::{
    AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind, VertexValues,
};
use saga_core::driver::StreamDriver;
use saga_core::pipelined::run_pipelined_full;
use saga_graph::csr::Csr;
use saga_graph::oracle::GraphOracle;
use saga_graph::{DataStructureKind, DeleteStats, Edge, UpdateStats};
use saga_stream::{EdgeOp, EdgeStream};
use saga_utils::parallel::ThreadPool;
use std::cell::RefCell;

/// Which driver path a run exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// Interleaved update/compute, per-edge shared-memory ingest.
    Serial,
    /// Interleaved, with radix-partitioned ingest forced on.
    Partitioned,
    /// Interleaved, compute on the sharded BSP engine (`saga-bsp`).
    Sharded,
    /// Update ∥ compute pipelining on CSR snapshots (INC only).
    Pipelined,
}

impl DriverKind {
    /// Every driver path.
    pub const ALL: [DriverKind; 4] = [
        DriverKind::Serial,
        DriverKind::Partitioned,
        DriverKind::Sharded,
        DriverKind::Pipelined,
    ];

    /// Shard count the differential `Sharded` runs use: deliberately
    /// coprime with the checker's thread counts so worker→shard
    /// assignment wraps.
    pub const DIFF_SHARDS: usize = 3;
}

/// A deliberate bug injected into one structure's input stream — a pure
/// program transformation, so a faulty run stays deterministic and the
/// shrinker can minimize the program that exposes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop every `n`-th delete op (1-based count; `n = 1` drops all).
    DropEveryNthDelete(usize),
    /// Redirect every delete op onto the reversed edge `(dst, src)`.
    ReverseDeleteEndpoints,
}

impl Fault {
    /// Applies the fault to a program, returning the corrupted variant the
    /// faulty structure will run (the oracle always sees the original).
    pub fn corrupt(&self, program: &OpProgram) -> OpProgram {
        let mut out = program.clone();
        let mut nth = 0usize;
        for batch in &mut out.batches {
            match self {
                Fault::DropEveryNthDelete(n) => {
                    batch.retain(|&(op, _, _)| {
                        if op == EdgeOp::Delete {
                            nth += 1;
                            !nth.is_multiple_of(*n.max(&1))
                        } else {
                            true
                        }
                    });
                }
                Fault::ReverseDeleteEndpoints => {
                    for op in batch.iter_mut() {
                        if op.0 == EdgeOp::Delete {
                            *op = (EdgeOp::Delete, op.2, op.1);
                        }
                    }
                }
            }
        }
        out.batches.retain(|b| !b.is_empty());
        out
    }
}

/// Fault routed to one structure (all others run the true program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The structure that receives the corrupted program.
    pub structure: DataStructureKind,
    /// The corruption.
    pub fault: Fault,
}

/// Configuration of one differential check.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Algorithm whose property values are compared.
    pub algorithm: AlgorithmKind,
    /// Worker threads per driver pool.
    pub threads: usize,
    /// Whether topology comparison also checks edge weights.
    pub check_weights: bool,
    /// Optional injected bug (mutation testing of the harness itself).
    pub fault: Option<FaultPlan>,
}

impl CheckConfig {
    /// A fast default: BFS values, 2 threads, weight checking on.
    pub fn quick() -> CheckConfig {
        CheckConfig {
            algorithm: AlgorithmKind::Bfs,
            threads: 2,
            check_weights: true,
            fault: None,
        }
    }
}

/// A detected disagreement between an implementation and the model.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Structure that diverged.
    pub structure: DataStructureKind,
    /// Driver path that diverged.
    pub driver: DriverKind,
    /// Compute model of the diverging run (`None` for topology-only).
    pub model: Option<ComputeModelKind>,
    /// Batch index (`None` for end-of-stream checks).
    pub batch: Option<usize>,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}/{:?}{}{}: {}",
            self.structure,
            self.driver,
            self.model.map(|m| format!("/{m:?}")).unwrap_or_default(),
            self.batch.map(|b| format!(" batch {b}")).unwrap_or_default(),
            self.detail
        )
    }
}

/// Per-batch ground truth derived from the oracle replay.
struct BatchModel {
    ins: UpdateStats,
    del: DeleteStats,
    /// From-scratch property values on a CSR of the post-batch topology.
    fs_values: VertexValues,
}

/// Algorithm tunables shared by every run and the reference: tight PR
/// tolerances so FS and INC converge to comparable fixpoints (the same
/// settings the churn differential suite uses).
pub(crate) fn params(root: saga_graph::Node) -> AlgorithmParams {
    AlgorithmParams {
        root,
        pr_epsilon: 1e-11,
        pr_fs_tolerance: 1e-11,
        ..AlgorithmParams::default()
    }
}

/// Compares two value vectors with per-type tolerances (u32 exact, f32
/// 1e-4, f64 1e-6 — matching the churn differential suite).
pub fn values_diff(reference: &VertexValues, got: &VertexValues) -> Option<String> {
    match (reference, got) {
        (VertexValues::U32(a), VertexValues::U32(b)) => a.iter().zip(b.iter()).enumerate().find_map(
            |(v, (x, y))| (x != y).then(|| format!("vertex {v}: reference {x} got {y}")),
        ),
        (VertexValues::F32(a), VertexValues::F32(b)) => {
            a.iter().zip(b.iter()).enumerate().find_map(|(v, (x, y))| {
                (x != y && (x - y).abs() >= 1e-4)
                    .then(|| format!("vertex {v}: reference {x} got {y}"))
            })
        }
        (VertexValues::F64(a), VertexValues::F64(b)) => {
            a.iter().zip(b.iter()).enumerate().find_map(|(v, (x, y))| {
                ((x - y).abs() >= 1e-6).then(|| format!("vertex {v}: reference {x} got {y}"))
            })
        }
        _ => Some("value type mismatch".into()),
    }
}

/// Replays the true program through the oracle, producing per-batch stats,
/// the final oracle, and per-batch FS reference values.
fn build_model(
    program: &OpProgram,
    algorithm: AlgorithmKind,
    root: saga_graph::Node,
    pool: &ThreadPool,
) -> (Vec<BatchModel>, GraphOracle) {
    let mut oracle = GraphOracle::new(program.capacity, program.directed);
    let mut model = Vec::with_capacity(program.batches.len());
    for batch in &program.batches {
        let mut inserts: Vec<Edge> = Vec::new();
        let mut deletes: Vec<Edge> = Vec::new();
        for &(op, s, d) in batch {
            let e = Edge::new(s, d, saga_stream::edge_weight(s, d, program.directed));
            match op {
                EdgeOp::Insert => inserts.push(e),
                EdgeOp::Delete => deletes.push(e),
            }
        }
        let (ins, del) = oracle.apply_batch(&inserts, &deletes);
        let snapshot = Csr::from_edges(program.capacity, program.directed, &oracle.edge_list());
        let mut fs = AlgorithmState::new(
            algorithm,
            ComputeModelKind::FromScratch,
            program.capacity,
            params(root),
        );
        fs.perform_alg(&snapshot, &[], &[], pool);
        model.push(BatchModel {
            ins,
            del,
            fs_values: fs.values(),
        });
    }
    (model, oracle)
}

fn counts_diff(
    model: &BatchModel,
    inserted: usize,
    duplicates: usize,
    removed: usize,
    missing: usize,
) -> Option<String> {
    if inserted != model.ins.inserted {
        return Some(format!(
            "inserted count: model {} got {inserted}",
            model.ins.inserted
        ));
    }
    if duplicates != model.ins.duplicates {
        return Some(format!(
            "duplicate count: model {} got {duplicates}",
            model.ins.duplicates
        ));
    }
    if removed != model.del.removed {
        return Some(format!(
            "removed count: model {} got {removed}",
            model.del.removed
        ));
    }
    if missing != model.del.missing {
        return Some(format!(
            "missing count: model {} got {missing}",
            model.del.missing
        ));
    }
    None
}

/// Checks one program differentially across all 5 structures (the paper's
/// four plus the delta-CSR extension) × {serial, partitioned, sharded BSP}
/// × {FS, INC} plus the pipelined INC driver, returning the first
/// divergence found (or `None` when every combination agrees with the
/// oracle model).
///
/// DeltaCsr rides the same matrix as the paper structures, which in
/// particular replays every program *through compaction boundaries*: any
/// INC/FS disagreement introduced by a snapshot merge shows up as a
/// divergence against the oracle model.
pub fn check_program(program: &OpProgram, config: &CheckConfig) -> Option<Divergence> {
    if program.batches.is_empty() {
        return None;
    }
    let true_stream = program.to_stream();
    let root = true_stream.edges.first().map(|e| e.src).unwrap_or(0);
    let ref_pool = ThreadPool::new(config.threads);
    let (model, oracle) = build_model(program, config.algorithm, root, &ref_pool);

    for ds in DataStructureKind::ALL_WITH_DELTA {
        // A fault plan corrupts this structure's *input*; the model keeps
        // describing the true program, so the corruption must surface as a
        // divergence on this structure only.
        let corrupted: Option<OpProgram> = match config.fault {
            Some(plan) if plan.structure == ds => Some(plan.fault.corrupt(program)),
            _ => None,
        };
        let stream = corrupted.as_ref().map(OpProgram::to_stream);
        let stream: &EdgeStream = stream.as_ref().unwrap_or(&true_stream);
        if stream.edges.is_empty() {
            // Only a fault can empty a stream (generated batches are
            // non-empty) — the whole program vanished, which is itself a
            // divergence from the model.
            return Some(Divergence {
                structure: ds,
                driver: DriverKind::Serial,
                model: None,
                batch: None,
                detail: "corrupted stream is empty while the model has batches".into(),
            });
        }

        for driver in [
            DriverKind::Serial,
            DriverKind::Partitioned,
            DriverKind::Sharded,
        ] {
            for model_kind in ComputeModelKind::ALL {
                if let Some(d) = check_interleaved(
                    program, stream, &model, &oracle, ds, driver, model_kind, root, config,
                ) {
                    return Some(d);
                }
            }
        }
        if let Some(d) = check_pipelined(stream, &model, &oracle, ds, root, config) {
            return Some(d);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn check_interleaved(
    program: &OpProgram,
    stream: &EdgeStream,
    model: &[BatchModel],
    oracle: &GraphOracle,
    ds: DataStructureKind,
    driver: DriverKind,
    model_kind: ComputeModelKind,
    root: saga_graph::Node,
    config: &CheckConfig,
) -> Option<Divergence> {
    let mut builder = StreamDriver::builder(ds, program.capacity)
        .algorithm(config.algorithm)
        .compute_model(model_kind)
        .threads(config.threads)
        .root(root)
        .params(params(root))
        .partitioned_ingest(driver == DriverKind::Partitioned);
    if driver == DriverKind::Sharded {
        builder = builder.sharded(DriverKind::DIFF_SHARDS);
    }
    let mut d = builder.build();
    let first: RefCell<Option<Divergence>> = RefCell::new(None);
    let divergence = |batch: Option<usize>, detail: String| Divergence {
        structure: ds,
        driver,
        model: Some(model_kind),
        batch,
        detail,
    };
    d.run_observed(stream, |record, graph, state| {
        if first.borrow().is_some() {
            return;
        }
        let i = record.index;
        let Some(expect) = model.get(i) else {
            *first.borrow_mut() = Some(divergence(Some(i), "batch beyond model".into()));
            return;
        };
        let found = counts_diff(
            expect,
            record.inserted,
            record.duplicates,
            record.removed,
            record.missing,
        )
        .or_else(|| values_diff(&expect.fs_values, &state.values()))
        .or_else(|| {
            // Final batch: the live structure must match the oracle.
            (i + 1 == model.len())
                .then(|| oracle.diff(graph, config.check_weights))
                .flatten()
        });
        if let Some(detail) = found {
            *first.borrow_mut() = Some(divergence(Some(i), detail));
        }
    });
    let clean_so_far = first.borrow().is_none();
    let mut found = first.into_inner();
    if clean_so_far {
        // A corrupted stream can lose whole batches; the count check makes
        // sure the final-topology comparison above actually ran.
        let ran = stream.op_batches(stream.edges.len().max(1)).count();
        if ran != model.len() {
            found = Some(divergence(
                None,
                format!("batch count: model {} got {ran}", model.len()),
            ));
        }
    }
    found
}

fn check_pipelined(
    stream: &EdgeStream,
    model: &[BatchModel],
    oracle: &GraphOracle,
    ds: DataStructureKind,
    root: saga_graph::Node,
    config: &CheckConfig,
) -> Option<Divergence> {
    let (outcome, graph) = run_pipelined_full(
        stream,
        ds,
        config.algorithm,
        stream.edges.len().max(1),
        config.threads,
        config.threads,
        params(root),
    );
    let divergence = |batch: Option<usize>, detail: String| Divergence {
        structure: ds,
        driver: DriverKind::Pipelined,
        model: Some(ComputeModelKind::Incremental),
        batch,
        detail,
    };
    // Per-batch counts are safe to compare (captured synchronously with
    // each apply); values are only compared at end-of-stream because the
    // live graph is mutated concurrently with each batch's compute.
    for record in &outcome.batches {
        let Some(expect) = model.get(record.index) else {
            return Some(divergence(Some(record.index), "batch beyond model".into()));
        };
        if let Some(detail) = counts_diff(
            expect,
            record.inserted,
            record.duplicates,
            record.removed,
            record.missing,
        ) {
            return Some(divergence(Some(record.index), detail));
        }
    }
    if outcome.batches.len() != model.len() {
        return Some(divergence(
            None,
            format!(
                "batch count: model {} got {}",
                model.len(),
                outcome.batches.len()
            ),
        ));
    }
    if let Some(expect) = model.last() {
        if let Some(detail) = values_diff(&expect.fs_values, &outcome.final_values) {
            return Some(divergence(None, detail));
        }
    }
    if let Some(detail) = oracle.diff(graph.as_ref(), config.check_weights) {
        return Some(Divergence {
            structure: ds,
            driver: DriverKind::Pipelined,
            model: None,
            batch: None,
            detail,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramProfile;

    #[test]
    fn clean_programs_have_no_divergence() {
        for (i, profile) in ProgramProfile::ALL.into_iter().enumerate() {
            let program = OpProgram::generate(0xBEEF + i as u64, profile);
            let config = CheckConfig::quick();
            let got = check_program(&program, &config);
            assert!(got.is_none(), "{profile:?}: {}", got.unwrap());
        }
    }

    #[test]
    fn dropped_delete_is_detected() {
        let program = OpProgram::from_ops(
            4,
            true,
            &[&[(EdgeOp::Insert, 0, 1), (EdgeOp::Delete, 0, 1)]],
        );
        let config = CheckConfig {
            fault: Some(FaultPlan {
                structure: DataStructureKind::Stinger,
                fault: Fault::DropEveryNthDelete(1),
            }),
            ..CheckConfig::quick()
        };
        let d = check_program(&program, &config).expect("fault must diverge");
        assert_eq!(d.structure, DataStructureKind::Stinger);
        assert!(d.detail.contains("removed count"), "{d}");
    }
}
