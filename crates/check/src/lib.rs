//! `saga-check`: model-based differential fuzzing and paper-shape
//! regression for the SAGA-Bench suite.
//!
//! Three layers (DESIGN.md §8):
//!
//! 1. **Op programs** ([`program`]) — seeded, profile-driven generators of
//!    small insert/delete/batch-boundary sequences. Programs are purely
//!    structural (weights derive from endpoints), so every data structure
//!    and driver sees the same logical stream.
//! 2. **Differential checking** ([`diff`]) — a program's ground truth is a
//!    [`GraphOracle`](saga_graph::oracle::GraphOracle) replay plus
//!    from-scratch values on CSR snapshots; every structure × driver ×
//!    compute model is replayed against it, comparing per-batch stats,
//!    per-batch values, and final topology. Failures shrink ([`shrink`])
//!    to a minimal program rendered as a paste-ready `#[test]`.
//! 3. **Shape assertions** ([`shape`]) — `assert_ordering!`,
//!    `assert_ratio_within!`, `assert_crossover!` turn the EXPERIMENTS.md
//!    scorecard into failing tests, backed by scaled-down re-runs of the
//!    experiment suite and by checked baselines parsed with the in-tree
//!    JSON reader ([`json`]).
//!
//! A fourth, smaller layer ([`tracecheck`]) validates `saga-trace`'s
//! exported Chrome trace-event JSON (shape + strict per-track span
//! nesting) for `cargo xtask check-trace` and CI's trace-smoke step.
//!
//! A fifth layer ([`recovery`]) targets the sharded BSP engine
//! (`saga-bsp`): it arms a mid-superstep worker kill, lets the engine
//! recover from its superstep-boundary checkpoint, and requires the
//! recovered run to be *bitwise identical* to an uninterrupted twin while
//! both track the serial oracle — CI's `recovery-smoke` job runs the
//! extended version.

pub mod diff;
pub mod json;
pub mod loadgen;
pub mod program;
pub mod recovery;
pub mod shape;
pub mod shrink;
pub mod tracecheck;

pub use diff::{check_program, CheckConfig, Divergence, DriverKind, Fault, FaultPlan};
pub use loadgen::{create_tenant, drive_tenant, verify_tenant, DriveReport, TenantSpec, VerifyReport};
pub use recovery::{check_recovery, RecoveryConfig};
pub use program::{OpProgram, ProgramProfile};
pub use shrink::{shrink, ShrinkResult};

use saga_algorithms::AlgorithmKind;

/// One fuzzing step: generate the seeded program, pick the algorithm by
/// seed rotation, check it, and return the divergence (if any) along with
/// the program and config actually used — callers feed these straight into
/// [`shrink`] and [`OpProgram::to_test_snippet`].
pub fn fuzz_one(seed: u64) -> (OpProgram, CheckConfig, Option<Divergence>) {
    let profile = ProgramProfile::ALL[(seed % ProgramProfile::ALL.len() as u64) as usize];
    let algorithm = AlgorithmKind::ALL[(seed / 7 % AlgorithmKind::ALL.len() as u64) as usize];
    let program = OpProgram::generate(seed, profile);
    let config = CheckConfig {
        algorithm,
        ..CheckConfig::quick()
    };
    let divergence = check_program(&program, &config);
    (program, config, divergence)
}

/// Runs `count` fuzzing steps starting at `base_seed`, panicking with a
/// shrunk reproducer on the first divergence. Returns the number of
/// programs checked.
///
/// # Panics
///
/// Panics with the shrunk minimal program's `#[test]` snippet when any
/// seed diverges.
pub fn fuzz_campaign(base_seed: u64, count: u64) -> u64 {
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let (program, config, divergence) = fuzz_one(seed);
        if let Some(d) = divergence {
            let result = shrink(
                &program,
                |p| check_program(p, &config).is_some(),
                500,
            );
            let snippet = result
                .program
                .to_test_snippet("shrunk_reproducer", "CheckConfig::quick()");
            panic!(
                "seed {seed} diverged: {d}\nshrunk to {} ops ({} evaluations, converged: {})\n{snippet}",
                result.program.total_ops(),
                result.evaluations,
                result.converged
            );
        }
    }
    count
}
