//! Test-case shrinking: batch bisection + op removal to a local minimum.
//!
//! Given a failing program and a predicate that re-checks it, the shrinker
//! greedily searches for a smaller program that still fails. The strategy
//! is delta-debugging shaped, structured around the program's two axes:
//!
//! 1. **Batch bisection** — drop contiguous runs of whole batches, halving
//!    the run length until single batches.
//! 2. **Op removal** — within each surviving batch, drop contiguous op
//!    ranges, halving until single ops.
//!
//! Both passes repeat until a fixpoint (no candidate shrinks) or the
//! predicate budget is exhausted. The result is 1-minimal with respect to
//! single-batch and single-op removal whenever the budget allows.

use crate::program::OpProgram;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest failing program found.
    pub program: OpProgram,
    /// Predicate evaluations spent.
    pub evaluations: usize,
    /// Whether shrinking reached a fixpoint (false = budget ran out).
    pub converged: bool,
}

/// Shrinks `program` while `failing` keeps returning `true` for it.
/// `budget` bounds the number of predicate evaluations (each evaluation
/// replays the full differential matrix, so budgets in the low hundreds
/// are typical).
///
/// # Panics
///
/// Panics if the input program does not satisfy `failing`.
pub fn shrink(
    program: &OpProgram,
    mut failing: impl FnMut(&OpProgram) -> bool,
    budget: usize,
) -> ShrinkResult {
    assert!(failing(program), "shrink requires a failing input");
    let mut best = program.clone();
    let mut evaluations = 1usize;
    let mut converged = false;
    loop {
        let mut improved = false;
        // Pass 1: drop runs of whole batches.
        let mut run = best.batches.len().max(1);
        while run >= 1 {
            let mut start = 0;
            while start < best.batches.len() && best.batches.len() > 1 {
                let end = (start + run).min(best.batches.len());
                let mut candidate = best.clone();
                candidate.batches.drain(start..end);
                if candidate.batches.is_empty() {
                    start += run;
                    continue;
                }
                if evaluations >= budget {
                    return ShrinkResult {
                        program: best,
                        evaluations,
                        converged,
                    };
                }
                evaluations += 1;
                if failing(&candidate) {
                    best = candidate;
                    improved = true;
                    // Retry the same start: the next run slid into place.
                } else {
                    start += run;
                }
            }
            if run == 1 {
                break;
            }
            run /= 2;
        }
        // Pass 2: drop op ranges within each batch.
        let mut b = 0;
        while b < best.batches.len() {
            let mut run = best.batches[b].len().max(1);
            while run >= 1 {
                let mut start = 0;
                while start < best.batches[b].len() {
                    let len = best.batches[b].len();
                    let end = (start + run).min(len);
                    let mut candidate = best.clone();
                    candidate.batches[b].drain(start..end);
                    if candidate.batches[b].is_empty() {
                        candidate.batches.remove(b);
                    }
                    if candidate.batches.is_empty() {
                        start += run;
                        continue;
                    }
                    if evaluations >= budget {
                        return ShrinkResult {
                            program: best,
                            evaluations,
                            converged,
                        };
                    }
                    evaluations += 1;
                    if failing(&candidate) {
                        best = candidate;
                        improved = true;
                        if b >= best.batches.len() {
                            break;
                        }
                    } else {
                        start += run;
                    }
                }
                if run == 1 || b >= best.batches.len() {
                    break;
                }
                run /= 2;
            }
            b += 1;
        }
        if !improved {
            converged = true;
            break;
        }
    }
    ShrinkResult {
        program: best,
        evaluations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_stream::EdgeOp;

    /// Predicate: fails iff the program still contains the op (Delete, 1, 2).
    fn has_marker(p: &OpProgram) -> bool {
        p.batches
            .iter()
            .flatten()
            .any(|&op| op == (EdgeOp::Delete, 1, 2))
    }

    #[test]
    fn shrinks_to_the_single_triggering_op() {
        let mut batches: Vec<Vec<(EdgeOp, u32, u32)>> = (0..6)
            .map(|i| {
                (0..10)
                    .map(|j| (EdgeOp::Insert, i as u32, (i + j + 1) as u32 % 20))
                    .collect()
            })
            .collect();
        batches[3].insert(5, (EdgeOp::Delete, 1, 2));
        let program = OpProgram {
            capacity: 20,
            directed: true,
            batches,
        };
        let result = shrink(&program, has_marker, 10_000);
        assert!(result.converged);
        assert_eq!(result.program.total_ops(), 1);
        assert_eq!(result.program.batches[0][0], (EdgeOp::Delete, 1, 2));
    }

    #[test]
    fn budget_exhaustion_returns_best_so_far() {
        let program = OpProgram {
            capacity: 10,
            directed: true,
            batches: vec![vec![(EdgeOp::Delete, 1, 2); 8]; 8],
        };
        let result = shrink(&program, has_marker, 5);
        assert!(!result.converged);
        assert!(has_marker(&result.program));
        assert!(result.evaluations <= 5);
    }
}
