//! Chrome trace-event JSON validation.
//!
//! `saga_trace::chrome::render` promises well-formed output: every record
//! carries the required fields, and per track (`tid`) the `B`/`E` phase
//! events nest strictly LIFO with no stray ends and nothing left open.
//! This module re-checks that promise from the *outside* — parsing the
//! exported document with the in-tree JSON reader ([`crate::json`]) and
//! walking the event array — so the exporter's tests don't certify their
//! own serializer. `cargo xtask check-trace <file>` wraps [`validate`] for
//! CI's trace-smoke step, and `tests/trace_export.rs` drives it against
//! live captures.

use crate::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a valid trace contained, for the one-line `check-trace` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records in `traceEvents` (metadata included).
    pub events: usize,
    /// Tracks named by `thread_name` metadata records.
    pub tracks: usize,
    /// Spans: matched `B`/`E` pairs plus `X` (complete) records.
    pub spans: usize,
    /// `i` (instant) records.
    pub instants: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} tracks, {} spans, {} instants",
            self.events, self.tracks, self.spans, self.instants
        )
    }
}

/// Validates one exported Chrome trace-event JSON document.
///
/// Checks, in order: the document parses; `traceEvents` is an array of
/// objects; every record has a string `name`, a known single-char `ph`
/// (`B`/`E`/`i`/`X`/`M`), and numeric `pid`/`tid`; non-metadata records
/// have a finite non-negative `ts` (and `X` a non-negative `dur`, `i` a
/// scope `s`); per `tid`, `B`/`E` nest strictly (each `E` names the
/// innermost open span, none left open at the end); and every event track
/// is named by a `thread_name` metadata record.
pub fn validate(doc: &str) -> Result<TraceStats, String> {
    let root = json::parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing `traceEvents` member")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;

    let mut stats = TraceStats {
        events: events.len(),
        tracks: 0,
        spans: 0,
        instants: 0,
    };
    // tid → stack of open span names; tid → named? (thread_name seen).
    let mut open: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut named: BTreeSet<usize> = BTreeSet::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();

    for (i, e) in events.iter().enumerate() {
        if !matches!(e, Json::Obj(_)) {
            return Err(format!("event {i}: not an object"));
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `ph`"))?;
        e.get("pid")
            .and_then(Json::as_usize)
            .ok_or(format!("event {i}: missing numeric `pid`"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_usize)
            .ok_or(format!("event {i}: missing numeric `tid`"))?;

        if ph == "M" {
            if !matches!(name, "process_name" | "thread_name" | "thread_sort_index") {
                return Err(format!("event {i}: unknown metadata record `{name}`"));
            }
            if e.get("args").is_none() {
                return Err(format!("event {i}: metadata record without `args`"));
            }
            if name == "thread_name" {
                stats.tracks += 1;
                named.insert(tid);
            }
            continue;
        }

        used.insert(tid);
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric `ts`"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad `ts` {ts}"));
        }
        match ph {
            "B" => open.entry(tid).or_default().push(name.to_string()),
            "E" => match open.entry(tid).or_default().pop() {
                Some(top) if top == name => stats.spans += 1,
                Some(top) => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` but innermost open span on tid {tid} \
                         is `{top}` (nesting violated)"
                    ));
                }
                None => {
                    return Err(format!("event {i}: `E` for `{name}` with no open span on tid {tid}"));
                }
            },
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: `X` record without numeric `dur`"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad `dur` {dur}"));
                }
                stats.spans += 1;
            }
            "i" => {
                e.get("s")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: instant record without scope `s`"))?;
                stats.instants += 1;
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }

    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "span `{name}` on tid {tid} never closed ({} left open)",
                stack.len()
            ));
        }
    }
    if let Some(tid) = used.difference(&named).next() {
        return Err(format!("tid {tid} has events but no `thread_name` metadata record"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAD: &str = r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"p"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}}"#;

    fn doc(events: &str) -> String {
        format!("{{\"traceEvents\":[\n{HEAD},\n{events}\n]}}")
    }

    #[test]
    fn accepts_nested_spans_and_counts_them() {
        let d = doc(
            r#"{"name":"batch","ph":"B","pid":1,"tid":1,"ts":1.000},
{"name":"update","ph":"B","pid":1,"tid":1,"ts":1.100,"args":{"edges":8}},
{"name":"update","ph":"E","pid":1,"tid":1,"ts":1.900},
{"name":"removed","ph":"i","pid":1,"tid":1,"ts":1.950,"s":"t"},
{"name":"task","ph":"X","pid":1,"tid":1,"ts":1.200,"dur":0.600},
{"name":"batch","ph":"E","pid":1,"tid":1,"ts":2.000}"#,
        );
        let stats = validate(&d).unwrap();
        assert_eq!(stats.tracks, 1);
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn rejects_crossed_and_stray_ends() {
        let crossed = doc(
            r#"{"name":"a","ph":"B","pid":1,"tid":1,"ts":1},
{"name":"b","ph":"B","pid":1,"tid":1,"ts":2},
{"name":"a","ph":"E","pid":1,"tid":1,"ts":3}"#,
        );
        assert!(validate(&crossed).unwrap_err().contains("nesting"));
        let stray = doc(r#"{"name":"a","ph":"E","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&stray).unwrap_err().contains("no open span"));
        let unclosed = doc(r#"{"name":"a","ph":"B","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn rejects_missing_fields_and_unnamed_tracks() {
        let no_ts = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"dur":1}"#);
        assert!(validate(&no_ts).unwrap_err().contains("`ts`"));
        let no_dur = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&no_dur).unwrap_err().contains("`dur`"));
        let unnamed = doc(r#"{"name":"a","ph":"i","pid":1,"tid":7,"ts":1,"s":"t"}"#);
        assert!(validate(&unnamed).unwrap_err().contains("thread_name"));
        assert!(validate("{}").unwrap_err().contains("traceEvents"));
        assert!(validate("not json").unwrap_err().contains("JSON"));
    }
}
