//! Chrome trace-event JSON validation.
//!
//! `saga_trace::chrome::render` promises well-formed output: every record
//! carries the required fields, and per track (`tid`) the `B`/`E` phase
//! events nest strictly LIFO with no stray ends and nothing left open.
//! This module re-checks that promise from the *outside* — parsing the
//! exported document with the in-tree JSON reader ([`crate::json`]) and
//! walking the event array — so the exporter's tests don't certify their
//! own serializer. `cargo xtask check-trace <file>` wraps [`validate`] for
//! CI's trace-smoke step, and `tests/trace_export.rs` drives it against
//! live captures.

use crate::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a valid trace contained, for the one-line `check-trace` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records in `traceEvents` (metadata included).
    pub events: usize,
    /// Tracks named by `thread_name` metadata records.
    pub tracks: usize,
    /// Spans: matched `B`/`E` pairs plus `X` (complete) records.
    pub spans: usize,
    /// `i` (instant) records.
    pub instants: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} tracks, {} spans, {} instants",
            self.events, self.tracks, self.spans, self.instants
        )
    }
}

/// Validates one exported Chrome trace-event JSON document.
///
/// Checks, in order: the document parses; `traceEvents` is an array of
/// objects; every record has a string `name`, a known single-char `ph`
/// (`B`/`E`/`i`/`X`/`M`), and numeric `pid`/`tid`; non-metadata records
/// have a finite non-negative `ts` (and `X` a non-negative `dur`, `i` a
/// scope `s`); per `tid`, `B`/`E` nest strictly (each `E` names the
/// innermost open span, none left open at the end); and every event track
/// is named by a `thread_name` metadata record.
pub fn validate(doc: &str) -> Result<TraceStats, String> {
    let root = json::parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing `traceEvents` member")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;

    let mut stats = TraceStats {
        events: events.len(),
        tracks: 0,
        spans: 0,
        instants: 0,
    };
    // tid → stack of open span names; tid → named? (thread_name seen).
    let mut open: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut named: BTreeSet<usize> = BTreeSet::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();

    for (i, e) in events.iter().enumerate() {
        if !matches!(e, Json::Obj(_)) {
            return Err(format!("event {i}: not an object"));
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `ph`"))?;
        e.get("pid")
            .and_then(Json::as_usize)
            .ok_or(format!("event {i}: missing numeric `pid`"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_usize)
            .ok_or(format!("event {i}: missing numeric `tid`"))?;

        if ph == "M" {
            if !matches!(name, "process_name" | "thread_name" | "thread_sort_index") {
                return Err(format!("event {i}: unknown metadata record `{name}`"));
            }
            if e.get("args").is_none() {
                return Err(format!("event {i}: metadata record without `args`"));
            }
            if name == "thread_name" {
                stats.tracks += 1;
                named.insert(tid);
            }
            continue;
        }

        used.insert(tid);
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing numeric `ts`"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad `ts` {ts}"));
        }
        match ph {
            "B" => open.entry(tid).or_default().push(name.to_string()),
            "E" => match open.entry(tid).or_default().pop() {
                Some(top) if top == name => stats.spans += 1,
                Some(top) => {
                    return Err(format!(
                        "event {i}: `E` for `{name}` but innermost open span on tid {tid} \
                         is `{top}` (nesting violated)"
                    ));
                }
                None => {
                    return Err(format!("event {i}: `E` for `{name}` with no open span on tid {tid}"));
                }
            },
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: `X` record without numeric `dur`"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad `dur` {dur}"));
                }
                stats.spans += 1;
            }
            "i" => {
                e.get("s")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: instant record without scope `s`"))?;
                stats.instants += 1;
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }

    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!(
                "span `{name}` on tid {tid} never closed ({} left open)",
                stack.len()
            ));
        }
    }
    if let Some(tid) = used.difference(&named).next() {
        return Err(format!("tid {tid} has events but no `thread_name` metadata record"));
    }
    Ok(stats)
}

/// Decodes a Chrome trace-event JSON document back into the
/// [`saga_trace::TraceEvent`] stream the exporter rendered, so the
/// offline analyzer (`saga_trace::analyze`, `cargo xtask analyze-trace`)
/// can run over exported artifacts as well as live captures.
///
/// The decode inverts `saga_trace::chrome::render` field by field:
/// `tid` → track name via the `thread_name` metadata records, `ts`/`dur`
/// microseconds back to nanoseconds, `B`/`E`/`i`/`X` phases back to
/// [`EventKind`](saga_trace::EventKind)s, the first non-`trace` numeric
/// `args` member back to the site argument, and the `trace` hex string
/// back to the trace id.
///
/// # Errors
///
/// Returns a message for anything [`validate`] would reject that this
/// walk touches (malformed JSON, missing fields, unknown phases,
/// unnamed tracks) — run [`validate`] first for the full invariant set.
pub fn decode_events(doc: &str) -> Result<Vec<saga_trace::TraceEvent>, String> {
    use saga_trace::EventKind;
    let root = json::parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing `traceEvents` member")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;

    let mut tracks: BTreeMap<usize, String> = BTreeMap::new();
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `ph`"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_usize)
            .ok_or(format!("event {i}: missing numeric `tid`"))?;
        if ph == "M" {
            if name == "thread_name" {
                let track = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: thread_name without args.name"))?;
                tracks.insert(tid, track.to_string());
            }
            continue;
        }
        let track = tracks
            .get(&tid)
            .cloned()
            .ok_or(format!("event {i}: tid {tid} has no thread_name record"))?;
        let us_to_ns = |v: f64| (v * 1000.0).round() as u64;
        let t_ns = e
            .get("ts")
            .and_then(Json::as_f64)
            .map(us_to_ns)
            .ok_or(format!("event {i}: missing numeric `ts`"))?;
        let (kind, dur_ns) = match ph {
            "B" => (EventKind::Begin, 0),
            "E" => (EventKind::End, 0),
            "i" => (EventKind::Instant, 0),
            "X" => (
                EventKind::Complete,
                e.get("dur")
                    .and_then(Json::as_f64)
                    .map(us_to_ns)
                    .ok_or(format!("event {i}: `X` record without numeric `dur`"))?,
            ),
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        };
        let mut arg = None;
        let mut trace_id = None;
        if let Some(Json::Obj(args)) = e.get("args") {
            for (key, value) in args {
                if key == "trace" {
                    let hex = value
                        .as_str()
                        .ok_or(format!("event {i}: `trace` arg is not a string"))?;
                    trace_id = Some(
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| format!("event {i}: bad trace id {hex:?}"))?,
                    );
                } else if arg.is_none() {
                    if let Some(v) = value.as_f64() {
                        arg = Some((key.clone(), v as u64));
                    }
                }
            }
        }
        out.push(saga_trace::TraceEvent {
            track,
            t_ns,
            dur_ns,
            kind,
            name: name.to_string(),
            arg,
            trace_id,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAD: &str = r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"p"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}}"#;

    fn doc(events: &str) -> String {
        format!("{{\"traceEvents\":[\n{HEAD},\n{events}\n]}}")
    }

    #[test]
    fn accepts_nested_spans_and_counts_them() {
        let d = doc(
            r#"{"name":"batch","ph":"B","pid":1,"tid":1,"ts":1.000},
{"name":"update","ph":"B","pid":1,"tid":1,"ts":1.100,"args":{"edges":8}},
{"name":"update","ph":"E","pid":1,"tid":1,"ts":1.900},
{"name":"removed","ph":"i","pid":1,"tid":1,"ts":1.950,"s":"t"},
{"name":"task","ph":"X","pid":1,"tid":1,"ts":1.200,"dur":0.600},
{"name":"batch","ph":"E","pid":1,"tid":1,"ts":2.000}"#,
        );
        let stats = validate(&d).unwrap();
        assert_eq!(stats.tracks, 1);
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn rejects_crossed_and_stray_ends() {
        let crossed = doc(
            r#"{"name":"a","ph":"B","pid":1,"tid":1,"ts":1},
{"name":"b","ph":"B","pid":1,"tid":1,"ts":2},
{"name":"a","ph":"E","pid":1,"tid":1,"ts":3}"#,
        );
        assert!(validate(&crossed).unwrap_err().contains("nesting"));
        let stray = doc(r#"{"name":"a","ph":"E","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&stray).unwrap_err().contains("no open span"));
        let unclosed = doc(r#"{"name":"a","ph":"B","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn decode_inverts_the_chrome_exporter() {
        use saga_trace::{EventKind, TraceEvent};
        let events = vec![
            TraceEvent {
                track: "worker-0".to_string(),
                t_ns: 1_500,
                dur_ns: 0,
                kind: EventKind::Begin,
                name: "batch".to_string(),
                arg: Some(("edges".to_string(), 42)),
                trace_id: Some(0xdead_beef_0000_0001),
            },
            TraceEvent {
                track: "worker-0".to_string(),
                t_ns: 2_000,
                dur_ns: 0,
                kind: EventKind::Instant,
                name: "removed".to_string(),
                arg: None,
                trace_id: None,
            },
            // The exporter only renders the trace id on the opening
            // record (B/i/X); an End's id would be redundant, so the
            // round-trip is exact only with it already absent here.
            TraceEvent {
                track: "worker-0".to_string(),
                t_ns: 9_000,
                dur_ns: 0,
                kind: EventKind::End,
                name: "batch".to_string(),
                arg: None,
                trace_id: None,
            },
            TraceEvent {
                track: "io".to_string(),
                t_ns: 3_000,
                dur_ns: 4_000,
                kind: EventKind::Complete,
                name: "flush".to_string(),
                arg: None,
                trace_id: None,
            },
        ];
        let doc = saga_trace::chrome::render(&events);
        validate(&doc).unwrap();
        let back = decode_events(&doc).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn decode_rejects_bad_trace_ids_and_unnamed_tids() {
        let bad_id = doc(r#"{"name":"a","ph":"i","pid":1,"tid":1,"ts":1,"s":"t","args":{"trace":"xyz"}}"#);
        assert!(decode_events(&bad_id).unwrap_err().contains("bad trace id"));
        let unnamed = doc(r#"{"name":"a","ph":"i","pid":1,"tid":7,"ts":1,"s":"t"}"#);
        assert!(decode_events(&unnamed).unwrap_err().contains("thread_name"));
    }

    #[test]
    fn rejects_missing_fields_and_unnamed_tracks() {
        let no_ts = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"dur":1}"#);
        assert!(validate(&no_ts).unwrap_err().contains("`ts`"));
        let no_dur = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":1}"#);
        assert!(validate(&no_dur).unwrap_err().contains("`dur`"));
        let unnamed = doc(r#"{"name":"a","ph":"i","pid":1,"tid":7,"ts":1,"s":"t"}"#);
        assert!(validate(&unnamed).unwrap_err().contains("thread_name"));
        assert!(validate("{}").unwrap_err().contains("traceEvents"));
        assert!(validate("not json").unwrap_err().contains("JSON"));
    }
}
