//! Paper-shape regression suite: the EXPERIMENTS.md scorecard as code.
//!
//! Every test is named for the paper table/figure whose claim it asserts,
//! re-running the experiment entry points in `saga_bench::experiments` at
//! a scaled-down configuration. Deterministic claims (dataset statistics,
//! trace-model cache behavior) always run; claims that depend on measured
//! wall-clock time are tolerance-banded generously and can be skipped on
//! noisy machines with `SAGA_SKIP_SHAPE_TIMING=1`.

use std::sync::OnceLock;

use saga_algorithms::AlgorithmKind;
use saga_bench::arch::{run_arch_characterization, GroupArchResult};
use saga_bench::experiments::{fs_over_inc, tail_sweep, update_share};
use saga_check::{assert_crossover, assert_ordering, assert_ratio_within};
use saga_core::experiment::ExperimentConfig;
use saga_graph::DataStructureKind;
use saga_stream::batch_stats::{table4_row, TailClass};
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;

/// Scaled-down configuration shared by the timing-based re-runs.
fn shape_cfg() -> ExperimentConfig {
    ExperimentConfig {
        seed: 42,
        repeats: 2,
        threads: 2,
        batch_size: None,
        scale: 0.05,
    }
}

/// True when `SAGA_SKIP_SHAPE_TIMING=1`: timing-based shapes are skipped
/// (deterministic ones still run).
fn timing_skipped() -> bool {
    if std::env::var("SAGA_SKIP_SHAPE_TIMING").as_deref() == Ok("1") {
        eprintln!("[shape] SAGA_SKIP_SHAPE_TIMING=1: skipping timing-based shape test");
        true
    } else {
        false
    }
}

/// The §VI trace-model characterization, computed once per test binary.
fn arch_results() -> &'static [GroupArchResult] {
    static RESULTS: OnceLock<Vec<GroupArchResult>> = OnceLock::new();
    RESULTS.get_or_init(|| {
        run_arch_characterization(&shape_cfg(), &[AlgorithmKind::Bfs], 16)
    })
}

// ---------------------------------------------------------------------------
// Table II — dataset statistics (deterministic).
// ---------------------------------------------------------------------------

/// Table II: Orkut is by far the densest dataset (E/V ≈ 38 vs ≤ 16 for
/// every other dataset).
#[test]
fn table2_orkut_is_densest_edge_node_ratio() {
    let ratio = |p: &DatasetProfile| {
        let s = p.paper_stats();
        s.edges as f64 / s.vertices as f64
    };
    let orkut = ratio(&DatasetProfile::orkut());
    assert_ratio_within!("Table II: Orkut E/V", orkut, 30.0, 50.0);
    for p in DatasetProfile::all() {
        if p.name() != "Orkut" {
            let r = ratio(&p);
            assert!(
                r < orkut,
                "Table II: {} E/V {r:.1} must be below Orkut's {orkut:.1}",
                p.name()
            );
        }
    }
}

/// Table II: batch counts at 500K-edge batches order
/// Talk < Wiki < LJ < Orkut < RMAT (12, 16, 35, 40, 50).
#[test]
fn table2_batch_count_ordering_talk_wiki_lj_orkut_rmat() {
    let count = |p: DatasetProfile| p.paper_stats().batch_count as f64;
    assert_ordering!(
        "Table II: batch counts",
        [
            ("Talk", count(DatasetProfile::talk())),
            ("Wiki", count(DatasetProfile::wiki())),
            ("LJ", count(DatasetProfile::livejournal())),
            ("Orkut", count(DatasetProfile::orkut())),
            ("RMAT", count(DatasetProfile::rmat())),
        ]
    );
}

// ---------------------------------------------------------------------------
// Table IV — per-batch degree tails (deterministic given the seed).
// ---------------------------------------------------------------------------

/// Table IV: Wiki's first batch has a heavy *in*-degree tail — its max
/// in-degree dwarfs its max out-degree (paper: 544 vs 70).
#[test]
fn table4_wiki_first_batch_in_tail_dominates_out() {
    let stream = DatasetProfile::wiki().generate(42);
    let row = table4_row(&stream.edges, stream.num_nodes, stream.suggested_batch_size);
    let ratio = row.one_batch.max_in as f64 / row.one_batch.max_out.max(1) as f64;
    assert_ratio_within!("Table IV: Wiki batch max-in / max-out", ratio, 2.0, 1e4);
    assert_eq!(row.tail, TailClass::Heavy, "Table IV: Wiki is HTail");
}

/// Table IV: Talk's first batch has a heavy *out*-degree tail — its max
/// out-degree dwarfs its max in-degree (paper: 432 vs 49).
#[test]
fn table4_talk_first_batch_out_tail_dominates_in() {
    let stream = DatasetProfile::talk().generate(42);
    let row = table4_row(&stream.edges, stream.num_nodes, stream.suggested_batch_size);
    let ratio = row.one_batch.max_out as f64 / row.one_batch.max_in.max(1) as f64;
    assert_ratio_within!("Table IV: Talk batch max-out / max-in", ratio, 2.0, 1e4);
    assert_eq!(row.tail, TailClass::Heavy, "Table IV: Talk is HTail");
}

/// Table IV: LJ, Orkut, and RMAT batches classify short-tailed — no vertex
/// concentrates a meaningful fraction of a batch.
#[test]
fn table4_stail_group_classifies_short() {
    for p in DatasetProfile::short_tailed() {
        let stream = p.generate(42);
        let row = table4_row(&stream.edges, stream.num_nodes, stream.suggested_batch_size);
        assert_eq!(
            row.tail,
            TailClass::Short,
            "Table IV: {} must classify STail (batch max_in={} max_out={} of {})",
            p.name(),
            row.one_batch.max_in,
            row.one_batch.max_out,
            row.batch_size
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 10 — trace-model cache characterization (deterministic model).
// ---------------------------------------------------------------------------

/// Fig. 10(a): the compute phase's LLC hit ratio exceeds the update
/// phase's in both dataset groups at every stage (paper: 82.6% vs 64.4%
/// at STail P1) — updates are pointer-chasing, compute re-reads frontiers.
#[test]
fn fig10a_compute_llc_hit_exceeds_update() {
    for g in arch_results() {
        for stage in 0..3 {
            assert_ordering!(
                &format!("Fig. 10a: {} P{} LLC hit", g.name, stage + 1),
                [
                    ("update", g.update[stage].llc_hit.mean),
                    ("compute", g.compute[stage].llc_hit.mean),
                ]
            );
        }
    }
}

/// Fig. 10(c): the compute phase's MPKI falls sharply from L2 to LLC in
/// both groups (paper: ~4–6×) — most L2 misses are absorbed by the LLC.
#[test]
fn fig10c_compute_mpki_falls_from_l2_to_llc() {
    for g in arch_results() {
        for stage in 0..3 {
            let ratio = g.compute[stage].l2_mpki.mean / g.compute[stage].llc_mpki.mean;
            assert_ratio_within!(
                &format!("Fig. 10c: {} P{} compute L2/LLC MPKI", g.name, stage + 1),
                ratio,
                2.0,
                1e3
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 7 — FS vs INC compute latency (timing-based, env-skippable).
// ---------------------------------------------------------------------------

/// Fig. 7: CC on Talk benefits enormously from the incremental model, and
/// the benefit grows as the graph fills up (paper: 5.1× at P1 → 15.1× at
/// P3).
#[test]
fn fig7_cc_talk_inc_speedup_grows_with_stage() {
    if timing_skipped() {
        return;
    }
    let r = fs_over_inc(&DatasetProfile::talk(), AlgorithmKind::Cc, &shape_cfg());
    assert_ordering!(
        "Fig. 7: CC/Talk FS/INC over stages",
        [
            ("P1", r.fs_over_inc[0]),
            ("P2", r.fs_over_inc[1]),
            ("P3", r.fs_over_inc[2]),
        ]
    );
    assert_ratio_within!("Fig. 7: CC/Talk FS/INC at P3", r.fs_over_inc[2], 2.0, 200.0);
}

/// Fig. 7: SSSP gains nothing from the incremental model — FS/INC stays
/// at or below ~1 at every stage (paper: ≤ 1.0 on every dataset).
#[test]
fn fig7_sssp_lj_inc_gives_no_speedup() {
    if timing_skipped() {
        return;
    }
    let r = fs_over_inc(&DatasetProfile::livejournal(), AlgorithmKind::Sssp, &shape_cfg());
    for (stage, ratio) in r.fs_over_inc.into_iter().enumerate() {
        assert_ratio_within!(
            &format!("Fig. 7: SSSP/LJ FS/INC at P{}", stage + 1),
            ratio,
            0.01,
            1.5
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — update share of batch latency (timing-based, env-skippable).
// ---------------------------------------------------------------------------

/// Fig. 8: for BFS the update phase is a substantial share of batch
/// latency (paper: 40–60% on LJ; Talk similar) — update cannot be ignored.
#[test]
fn fig8_bfs_talk_update_share_is_substantial() {
    if timing_skipped() {
        return;
    }
    let r = update_share(&DatasetProfile::talk(), AlgorithmKind::Bfs, &shape_cfg());
    assert_ratio_within!("Fig. 8: BFS/Talk update share at P3", r.share[2], 0.1, 0.95);
}

/// Fig. 8: PageRank's compute dominates — its update share is far below
/// BFS's (paper: 3–10% vs 40–60%).
#[test]
fn fig8_pagerank_update_share_below_bfs() {
    if timing_skipped() {
        return;
    }
    let cfg = shape_cfg();
    let pr = update_share(&DatasetProfile::talk(), AlgorithmKind::PageRank, &cfg);
    let bfs = update_share(&DatasetProfile::talk(), AlgorithmKind::Bfs, &cfg);
    assert_ratio_within!("Fig. 8: PR/Talk update share at P3", pr.share[2], 0.001, 0.35);
    assert_ordering!(
        "Fig. 8: update share PR vs BFS at P3",
        [("PageRank", pr.share[2]), ("BFS", bfs.share[2])]
    );
}

// ---------------------------------------------------------------------------
// Fig. 6(b) mechanism — the tail sweep (deterministic + timing parts).
// ---------------------------------------------------------------------------

const SWEEP_MASSES: [f64; 3] = [0.0, 0.15, 0.30];
const SWEEP_NODES: usize = 4_000;
const SWEEP_EDGES: usize = 30_000;
const SWEEP_BATCH: usize = 3_000;

/// Tail sweep (Fig. 6b mechanism): raising the in-hub mass concentrates
/// the per-batch in-degree tail — max in-degree grows by well over 4×
/// from 0% to 30% hub mass. Deterministic given the seed.
#[test]
fn tail_sweep_fig6b_hub_mass_concentrates_first_batch() {
    use saga_bench::experiments::tail_sweep_stream;
    use saga_stream::batch_stats::degree_stats;
    let max_in = |mass: f64| {
        let edges = tail_sweep_stream(SWEEP_NODES, SWEEP_EDGES, mass, 42);
        degree_stats(&edges[..SWEEP_BATCH], SWEEP_NODES).max_in as f64
    };
    let (flat, hubby) = (max_in(0.0), max_in(0.30));
    assert_ratio_within!("tail sweep: batch max-in growth", hubby / flat, 4.0, 1e4);
}

/// Tail sweep (Fig. 6b): AS degrades with hub mass while DAH holds or
/// improves — their *relative slowdown* curves cross over (paper: AS
/// 19→66 ms vs DAH 77→56 ms across the sweep).
#[test]
fn tail_sweep_fig6b_as_degrades_while_dah_holds() {
    if timing_skipped() {
        return;
    }
    let pool = ThreadPool::new(2);
    let pts = tail_sweep(
        &SWEEP_MASSES,
        SWEEP_NODES,
        SWEEP_EDGES,
        SWEEP_BATCH,
        3,
        42,
        &pool,
    );
    let slowdown = |ds: DataStructureKind| -> Vec<f64> {
        let base = pts[0].ms(ds);
        pts.iter().map(|p| p.ms(ds) / base).collect()
    };
    let as_curve = slowdown(DataStructureKind::AdjacencyShared);
    let dah_curve = slowdown(DataStructureKind::Dah);
    assert_crossover!(
        "tail sweep: AS vs DAH relative slowdown over hub mass",
        &SWEEP_MASSES,
        &as_curve,
        &dah_curve
    );
}

/// Fig. 10 tail view of the Fig. 6b flip: per-batch p99 update latency,
/// read off the log-bucketed histograms that replaced the bespoke
/// percentile math, degrades with hub mass far more for AS than for DAH
/// (the paper's tail-latency metric amplifies the hub's serialized work).
#[test]
fn tail_sweep_fig10_p99_degrades_more_for_as_than_dah() {
    if timing_skipped() {
        return;
    }
    const REPEATS: usize = 3;
    let pool = ThreadPool::new(2);
    let pts = tail_sweep(
        &SWEEP_MASSES,
        SWEEP_NODES,
        SWEEP_EDGES,
        SWEEP_BATCH,
        REPEATS,
        42,
        &pool,
    );
    // Histogram bookkeeping is deterministic: one sample per batch per
    // repeat, with ordered quantiles.
    let batches = SWEEP_EDGES.div_ceil(SWEEP_BATCH);
    for p in &pts {
        for (ds, h) in &p.update_hist {
            assert_eq!(
                h.count,
                (batches * REPEATS) as u64,
                "mass {} / {ds:?}: every per-batch latency must be recorded",
                p.mass
            );
            assert!(
                h.min <= h.p50 && h.p50 <= h.p99 && h.p99 <= h.max,
                "mass {} / {ds:?}: quantiles out of order: {h:?}",
                p.mass
            );
        }
    }
    // The timing claim, normalized like the mean-latency crossover above:
    // each structure's p99 at the heaviest mass relative to its own flat
    // baseline — AS's tail stretches more than DAH's.
    let p99_slowdown = |ds: DataStructureKind| {
        pts.last().unwrap().p99_ms(ds) / pts[0].p99_ms(ds)
    };
    assert_ordering!(
        "tail sweep: p99 slowdown at 30% hub mass, DAH vs AS",
        [
            ("DAH", p99_slowdown(DataStructureKind::Dah)),
            ("AS", p99_slowdown(DataStructureKind::AdjacencyShared)),
        ]
    );
}
