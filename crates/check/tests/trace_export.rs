//! Live-capture round-trip of the trace exporter: spans emitted through
//! the real `saga_trace` API (main thread and pool workers), rendered as
//! Chrome trace-event JSON, parsed back with the in-tree JSON reader, and
//! checked for strict per-track `B`/`E` nesting by
//! [`saga_check::tracecheck`] — the exporter's well-formedness promise
//! certified from outside its own crate.

use std::sync::Mutex;

use saga_check::json::{self, Json};
use saga_check::tracecheck;
use saga_utils::parallel::ThreadPool;

/// The trace rings are process-global; tests in this binary serialize.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing enabled on clean rings and returns the exported
/// Chrome trace JSON of exactly what `f` emitted.
fn capture<F: FnOnce()>(f: F) -> String {
    saga_trace::clear();
    saga_trace::set_enabled(true);
    f();
    saga_trace::set_enabled(false);
    let doc = saga_trace::chrome_trace();
    saga_trace::clear();
    doc
}

#[test]
fn nested_spans_round_trip_and_validate() {
    let _g = LOCK.lock().unwrap();
    let doc = capture(|| {
        let _batch = saga_trace::span!("batch", index = 0u64);
        {
            let _update = saga_trace::span!("update", edges = 64u64);
            saga_trace::instant!("removed", count = 3u64);
        }
        let _compute = saga_trace::span!("compute");
    });
    let stats = tracecheck::validate(&doc).expect("exported trace must validate");
    assert_eq!(stats.spans, 3, "{stats}");
    assert_eq!(stats.instants, 1, "{stats}");
    assert_eq!(stats.tracks, 1, "{stats}");

    // The document is plain JSON to the in-tree reader, with the viewer
    // affordances present.
    let v = json::parse(&doc).expect("exported trace must parse");
    assert_eq!(
        v.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(Json::as_str) == Some("thread_name")));
}

#[test]
fn pool_worker_tasks_nest_per_track() {
    let _g = LOCK.lock().unwrap();
    let doc = capture(|| {
        let pool = ThreadPool::new(3);
        for _ in 0..4 {
            pool.run_on_all(|w| {
                std::hint::black_box(w + 1);
            });
        }
    });
    let stats = tracecheck::validate(&doc).expect("pool trace must validate");
    // 3 workers × 4 fork-joins = 12 task spans across ≥ 3 named tracks
    // (B/E pairs, one per worker per region), each strictly nested on its
    // own track.
    assert!(stats.tracks >= 3, "{stats}");
    assert!(stats.spans >= 12, "{stats}");
}

#[test]
fn truncated_capture_is_auto_closed_and_still_validates() {
    let _g = LOCK.lock().unwrap();
    let doc = capture(|| {
        // Leak the guards: only the `B` records reach the ring, as when
        // the drop-newest policy truncates a capture mid-span.
        std::mem::forget(saga_trace::span!("batch", index = 9u64));
        std::mem::forget(saga_trace::span!("update"));
    });
    let stats = tracecheck::validate(&doc)
        .expect("exporter must auto-close truncated spans into a valid trace");
    assert_eq!(stats.spans, 2, "{stats}");
}
