//! Trace-overhead shape test: re-measures the disabled-path cost of the
//! span macros — now including the ctx-carrying `span_with_ctx!` used on
//! the server's request path — against a representative streaming
//! workload, regenerates `results/BENCH_trace_overhead.json`, and
//! re-asserts the paper-adjacent bound: tracing compiled in but disabled
//! must cost under 2% of the workload's wall time.
//!
//! The estimate is deliberately conservative: `per_call_ns` is the cost
//! of one *disabled span guard* (create + drop — two ring events' worth
//! of call sites), yet it is multiplied by the *event* count an enabled
//! run produces. Skipped (and the artifact left untouched) under
//! `SAGA_SKIP_SHAPE_TIMING=1`, like every timing-based shape test.

use saga_core::driver::StreamDriver;
use saga_graph::DataStructureKind;
use saga_stream::{edge_weight, Edge};
use std::time::Instant;

/// A representative streaming run: 20 incremental CC batches of 64
/// inserts on a 256-vertex shared-adjacency graph — the same span
/// skeleton (`batch`/`update`/`ingest`/`compute` + instants) the live
/// server emits per tenant batch. Returns a sink value so the optimizer
/// keeps the work.
fn workload() -> u64 {
    let driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, 256)
        .algorithm(saga_algorithms::AlgorithmKind::Cc)
        .compute_model(saga_algorithms::ComputeModelKind::Incremental)
        .threads(2)
        .build();
    let mut sess = driver.session(256, true, 0);
    let mut sink = 0u64;
    for b in 0..20u32 {
        let inserts: Vec<Edge> = (0..64u32)
            .map(|i| {
                let s = (b * 64 + i) % 256;
                let d = (s * 7 + 13) % 256;
                Edge::new(s, d, edge_weight(s, d, true))
            })
            .collect();
        let record = sess.step(&inserts, &[]);
        sink = sink.wrapping_add(record.inserted as u64);
    }
    sink
}

#[test]
fn disabled_tracing_overhead_stays_under_bound() {
    if std::env::var("SAGA_SKIP_SHAPE_TIMING").as_deref() == Ok("1") {
        eprintln!("[shape] SAGA_SKIP_SHAPE_TIMING=1: skipping trace-overhead measurement");
        return;
    }

    // Events one enabled run emits (includes every span's B/E pair).
    saga_trace::clear();
    saga_trace::set_enabled(true);
    std::hint::black_box(workload());
    let events_per_run = saga_trace::drain().len();
    saga_trace::set_enabled(false);
    saga_trace::clear();
    assert!(events_per_run > 0, "enabled run must emit events");

    // Disabled-path cost per span guard, ctx-carrying path included —
    // the exact macros the server's request path compiles in.
    const CALLS: u64 = 2_000_000;
    let ctx = saga_trace::TraceCtx::mint();
    let started = Instant::now();
    for i in 0..CALLS {
        let _root = saga_trace::span_with_ctx!("probe_root", ctx);
        let _leaf = saga_trace::span!("probe_leaf", i = i);
    }
    // Two guards per iteration.
    let per_call_ns = started.elapsed().as_secs_f64() * 1e9 / (2 * CALLS) as f64;

    // Workload wall time with tracing disabled (best of 3 — the bound
    // is about cost structure, not scheduler noise).
    let disabled_wall_secs = (0..3)
        .map(|_| {
            let started = Instant::now();
            std::hint::black_box(workload());
            started.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let estimated_secs = per_call_ns * events_per_run as f64 / 1e9;
    let fraction = estimated_secs / disabled_wall_secs;
    const BOUND: f64 = 0.02;
    assert!(
        fraction < BOUND,
        "disabled tracing overhead {fraction:.6} (per_call {per_call_ns:.1}ns × \
         {events_per_run} events over {disabled_wall_secs:.6}s) exceeds the {BOUND} bound"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"per_call_ns\": {per_call_ns:.3},\n  \
         \"events_per_run\": {events_per_run},\n  \"disabled_wall_secs\": {disabled_wall_secs:.6},\n  \
         \"estimated_disabled_overhead_secs\": {estimated_secs:.9},\n  \
         \"estimated_disabled_overhead_fraction\": {fraction:.6},\n  \"bound\": {BOUND}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_trace_overhead.json");
    std::fs::write(path, json).expect("write results/BENCH_trace_overhead.json");
    eprintln!(
        "[shape] trace overhead: {per_call_ns:.1}ns/call × {events_per_run} events = \
         {fraction:.6} of {disabled_wall_secs:.6}s (bound {BOUND})"
    );
}
