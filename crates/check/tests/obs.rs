//! End-to-end observability acceptance: request-scoped trace
//! propagation through the live server, flight-recorder capture over
//! HTTP, and Prometheus exposition — the PR's headline contract.
//!
//! One in-process `saga-server` hosts a serial tenant and a sharded-BSP
//! tenant. Each batch POST's `x-saga-trace-id` response header names a
//! trace; after a snapshot barrier proves the batches were applied, the
//! live capture must stitch (per trace id, via `saga_trace::analyze`)
//! into a *single* tree rooted at the `http_request` span with the
//! driver's compute work as descendants — per-shard BSP spans included
//! for the sharded tenant, across the thread-pool hop. The same trees
//! must survive the export → `decode_events` round trip on the
//! `/debug/flight` body, which is also written to
//! `target/obs-flight.trace.json` and validated like CI's artifact.

use saga_check::tracecheck;
use saga_server::{Client, Server, ServerConfig};
use saga_trace::analyze::{critical_path, trace_trees, TraceTree};

/// Finds the stitched tree for a response's `x-saga-trace-id` header.
fn tree_for<'t>(trees: &'t [TraceTree], hex: &str) -> &'t TraceTree {
    let id = u64::from_str_radix(hex, 16).expect("trace id header is hex");
    let matching: Vec<&TraceTree> = trees.iter().filter(|t| t.trace_id == id).collect();
    assert_eq!(matching.len(), 1, "trace {hex}: exactly one stitched tree");
    matching[0]
}

/// True when some span named `name` exists anywhere in the tree.
fn contains_span(tree: &TraceTree, name: &str) -> bool {
    let mut found = false;
    tree.root.walk(&mut |n, _| found |= n.name == name);
    found
}

#[test]
fn batch_requests_export_single_stitched_trace_trees() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut client = Client::new(server.addr());

    // A serial tenant and a sharded one (same algorithm, so the only
    // difference in their trees is the execution layer).
    let resp = client
        .post("/tenants", "name=serial\nalgorithm=cc\nmodel=inc\ncapacity=32\n")
        .expect("create serial");
    assert_eq!(resp.status, 201, "{}", resp.text());
    let resp = client
        .post(
            "/tenants",
            "name=sharded\nalgorithm=cc\nmodel=inc\ncapacity=32\nshards=4\nthreads=4\n",
        )
        .expect("create sharded");
    assert_eq!(resp.status, 201, "{}", resp.text());

    let mut body = String::new();
    for s in 0..24u32 {
        body.push_str(&format!("{s} {}\n", (s + 1) % 24));
    }
    let resp = client.post("/tenants/serial/batches", &body).expect("serial batch");
    assert_eq!(resp.status, 202, "{}", resp.text());
    let serial_trace = resp
        .header("x-saga-trace-id")
        .expect("every response carries a trace id")
        .to_string();
    let resp = client.post("/tenants/sharded/batches", &body).expect("sharded batch");
    assert_eq!(resp.status, 202, "{}", resp.text());
    let sharded_trace = resp.header("x-saga-trace-id").unwrap().to_string();

    // Snapshot barriers: both batches fully applied before we drain.
    assert_eq!(client.get("/tenants/serial/values").unwrap().status, 200);
    assert_eq!(client.get("/tenants/sharded/values").unwrap().status, 200);

    // The live capture stitches into one tree per request, rooted at
    // the HTTP span, with the async tenant batch (and everything the
    // driver did) attached beneath it.
    let trees = trace_trees(&saga_trace::drain());
    let serial = tree_for(&trees, &serial_trace);
    assert_eq!(serial.root.name, "http_request", "trace roots at the request span");
    assert!(contains_span(serial, "tenant_batch"), "queue hop preserved");
    assert!(contains_span(serial, "compute"), "driver compute leaf present");
    let path: Vec<String> = critical_path(&serial.root).into_iter().map(|(n, _)| n).collect();
    assert_eq!(path[0], "http_request");
    assert!(
        path.iter().any(|n| n == "tenant_batch"),
        "critical path crosses the queue hop: {path:?}"
    );

    let sharded = tree_for(&trees, &sharded_trace);
    assert_eq!(sharded.root.name, "http_request");
    assert!(
        contains_span(sharded, "bsp-scatter") || contains_span(sharded, "bsp-gather"),
        "per-shard BSP spans joined the request tree across the pool hop"
    );

    // `/debug/flight` serves the same capture as a Chrome trace; the
    // exported artifact must validate and decode back to trees with the
    // same roots (the CI smoke job replays exactly this path via
    // `cargo xtask check-trace` / `analyze-trace`).
    let flight = client.get("/debug/flight").expect("flight body").text();
    let stats = tracecheck::validate(&flight).expect("flight dump is a valid Chrome trace");
    assert!(stats.spans > 0, "{stats}");
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs-flight.trace.json");
    std::fs::write(artifact, &flight).unwrap();
    let decoded = tracecheck::decode_events(&flight).expect("flight dump decodes");
    let exported = trace_trees(&decoded);
    let serial_exported = tree_for(&exported, &serial_trace);
    assert_eq!(serial_exported.root.name, "http_request");
    assert!(contains_span(serial_exported, "tenant_batch"));

    // The default `/metrics` body is Prometheus exposition the in-tree
    // validator accepts, carrying build info and the request counters
    // this test just incremented.
    let metrics = client.get("/metrics").expect("metrics body").text();
    let families = saga_trace::expose::parse_prometheus(&metrics).expect("valid exposition");
    for required in ["saga_build_info", "saga_uptime_seconds", "server_requests"] {
        assert!(
            families.iter().any(|f| f.name == required),
            "missing family {required}\n{metrics}"
        );
    }

    server.shutdown();
}
