//! Differential fuzzing entry points.
//!
//! - `fuzz_quick` runs on every `cargo test`: a small seeded campaign over
//!   all profiles and algorithms.
//! - `fuzz_smoke` is the CI smoke job (`cargo test -p saga-check --
//!   --ignored fuzz_smoke`): ≥500 seeded programs, still deterministic.
//!   `SAGA_FUZZ_SEED` / `SAGA_FUZZ_COUNT` widen the campaign for the
//!   extended nightly-style matrix.
//! - `seeded_fault_is_caught_and_shrunk` proves the harness detects a
//!   deliberately injected bug (a structure that silently drops delete
//!   ops) and shrinks the trigger to a handful of ops.

use saga_check::{
    check_program, fuzz_campaign, shrink, CheckConfig, Fault, FaultPlan, OpProgram,
    ProgramProfile,
};
use saga_graph::DataStructureKind;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fast campaign that runs on every `cargo test`.
#[test]
fn fuzz_quick() {
    let checked = fuzz_campaign(0, 60);
    assert_eq!(checked, 60);
}

/// CI smoke campaign: ≥500 seeded programs, zero divergences expected.
/// Ignored by default; the `fuzz-smoke` CI job runs it explicitly.
#[test]
#[ignore = "CI smoke budget; run with -- --ignored fuzz_smoke"]
fn fuzz_smoke() {
    let base = env_u64("SAGA_FUZZ_SEED", 1);
    let count = env_u64("SAGA_FUZZ_COUNT", 500);
    let checked = fuzz_campaign(base, count);
    assert_eq!(checked, count);
}

/// A deliberately seeded bug — DAH silently dropping every third delete —
/// must be caught by the differential check and shrunk to a minimal
/// reproducer of at most 10 ops that renders as a paste-ready test.
#[test]
fn seeded_fault_is_caught_and_shrunk() {
    let config = CheckConfig {
        fault: Some(FaultPlan {
            structure: DataStructureKind::Dah,
            fault: Fault::DropEveryNthDelete(3),
        }),
        ..CheckConfig::quick()
    };
    // Scan delete-heavy seeds until one trips the fault: not every program
    // exercises the dropped delete (a delete whose edge never existed is
    // a no-op in both worlds only if its `missing` count also matches the
    // corrupted replay, which the checker verifies too — so in practice
    // the very first seeds diverge).
    let mut caught = None;
    for seed in 0..32u64 {
        let program = OpProgram::generate(seed, ProgramProfile::DeleteHeavy);
        if check_program(&program, &config).is_some() {
            caught = Some(program);
            break;
        }
    }
    let program = caught.expect("no delete-heavy seed in 0..32 tripped the seeded fault");

    let result = shrink(&program, |p| check_program(p, &config).is_some(), 400);
    assert!(
        check_program(&result.program, &config).is_some(),
        "shrunk program must still fail"
    );
    assert!(
        result.program.total_ops() <= 10,
        "shrunk reproducer has {} ops (started from {})",
        result.program.total_ops(),
        program.total_ops()
    );

    let snippet = result
        .program
        .to_test_snippet("dah_drops_deletes", "CheckConfig::quick()");
    assert!(snippet.contains("#[test]"), "snippet:\n{snippet}");
    assert!(snippet.contains("from_ops"), "snippet:\n{snippet}");
}

/// Every adversarial profile generates structurally valid programs whose
/// replay stays clean across the whole matrix (spot check, one seed per
/// profile — the campaigns above cover breadth).
#[test]
fn all_profiles_replay_clean() {
    for (i, profile) in ProgramProfile::ALL.into_iter().enumerate() {
        let program = OpProgram::generate(0xFACE + i as u64, profile);
        let config = CheckConfig::quick();
        let got = check_program(&program, &config);
        assert!(got.is_none(), "{profile:?}: {}", got.unwrap());
    }
}
