//! Differential fuzzing entry points.
//!
//! - `fuzz_quick` runs on every `cargo test`: a small seeded campaign over
//!   all profiles and algorithms.
//! - `fuzz_smoke` is the CI smoke job (`cargo test -p saga-check --
//!   --ignored fuzz_smoke`): ≥500 seeded programs, still deterministic.
//!   `SAGA_FUZZ_SEED` / `SAGA_FUZZ_COUNT` widen the campaign for the
//!   extended nightly-style matrix.
//! - `seeded_fault_is_caught_and_shrunk` proves the harness detects a
//!   deliberately injected bug (a structure that silently drops delete
//!   ops) and shrinks the trigger to a handful of ops.

use saga_check::{
    check_program, fuzz_campaign, shrink, CheckConfig, Fault, FaultPlan, OpProgram,
    ProgramProfile,
};
use saga_graph::delta_csr::DeltaCsr;
use saga_graph::{DataStructureKind, DynamicGraph, Edge};
use saga_stream::EdgeOp;
use saga_utils::hash::mix64;
use saga_utils::parallel::ThreadPool;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fast campaign that runs on every `cargo test`.
#[test]
fn fuzz_quick() {
    let checked = fuzz_campaign(0, 60);
    assert_eq!(checked, 60);
}

/// CI smoke campaign: ≥500 seeded programs, zero divergences expected.
/// Ignored by default; the `fuzz-smoke` CI job runs it explicitly.
#[test]
#[ignore = "CI smoke budget; run with -- --ignored fuzz_smoke"]
fn fuzz_smoke() {
    let base = env_u64("SAGA_FUZZ_SEED", 1);
    let count = env_u64("SAGA_FUZZ_COUNT", 500);
    let checked = fuzz_campaign(base, count);
    assert_eq!(checked, count);
}

/// A deliberately seeded bug — DAH silently dropping every third delete —
/// must be caught by the differential check and shrunk to a minimal
/// reproducer of at most 10 ops that renders as a paste-ready test.
#[test]
fn seeded_fault_is_caught_and_shrunk() {
    let config = CheckConfig {
        fault: Some(FaultPlan {
            structure: DataStructureKind::Dah,
            fault: Fault::DropEveryNthDelete(3),
        }),
        ..CheckConfig::quick()
    };
    // Scan delete-heavy seeds until one trips the fault: not every program
    // exercises the dropped delete (a delete whose edge never existed is
    // a no-op in both worlds only if its `missing` count also matches the
    // corrupted replay, which the checker verifies too — so in practice
    // the very first seeds diverge).
    let mut caught = None;
    for seed in 0..32u64 {
        let program = OpProgram::generate(seed, ProgramProfile::DeleteHeavy);
        if check_program(&program, &config).is_some() {
            caught = Some(program);
            break;
        }
    }
    let program = caught.expect("no delete-heavy seed in 0..32 tripped the seeded fault");

    let result = shrink(&program, |p| check_program(p, &config).is_some(), 400);
    assert!(
        check_program(&result.program, &config).is_some(),
        "shrunk program must still fail"
    );
    assert!(
        result.program.total_ops() <= 10,
        "shrunk reproducer has {} ops (started from {})",
        result.program.total_ops(),
        program.total_ops()
    );

    let snippet = result
        .program
        .to_test_snippet("dah_drops_deletes", "CheckConfig::quick()");
    assert!(snippet.contains("#[test]"), "snippet:\n{snippet}");
    assert!(snippet.contains("from_ops"), "snippet:\n{snippet}");
}

/// The delta-CSR column of the matrix is genuinely differential: a fault
/// routed to DeltaCsr's input stream (deletes replayed with reversed
/// endpoints) must surface as a divergence attributed to DeltaCsr.
#[test]
fn delta_csr_fault_is_caught() {
    let program = OpProgram::from_ops(
        4,
        true,
        &[&[
            (EdgeOp::Insert, 0, 1),
            (EdgeOp::Insert, 1, 2),
            (EdgeOp::Delete, 0, 1),
        ]],
    );
    let config = CheckConfig {
        fault: Some(FaultPlan {
            structure: DataStructureKind::DeltaCsr,
            fault: Fault::ReverseDeleteEndpoints,
        }),
        ..CheckConfig::quick()
    };
    let d = check_program(&program, &config).expect("fault must diverge");
    assert_eq!(d.structure, DataStructureKind::DeltaCsr);
}

/// A long mixed insert/delete program crosses DeltaCsr's default
/// compaction threshold several times; the differential replay (INC == FS
/// == oracle per batch) must stay clean straight through every snapshot
/// merge. A side replay on a bare `DeltaCsr` witnesses that the threshold
/// actually fired — otherwise this test would silently stop covering
/// compaction if the default floor were raised.
#[test]
fn delta_csr_replays_clean_through_compaction() {
    const CAP: usize = 48;
    let batches: Vec<Vec<(EdgeOp, u32, u32)>> = (0..8u64)
        .map(|b| {
            (0..90u64)
                .map(|i| {
                    let r = mix64(b * 1_000 + i + 1);
                    let src = ((r >> 8) % CAP as u64) as u32;
                    let dst = ((r >> 32) % CAP as u64) as u32;
                    let op = if r.is_multiple_of(5) {
                        EdgeOp::Delete
                    } else {
                        EdgeOp::Insert
                    };
                    (op, src, dst)
                })
                .collect()
        })
        .collect();
    let slices: Vec<&[(EdgeOp, u32, u32)]> = batches.iter().map(Vec::as_slice).collect();
    let program = OpProgram::from_ops(CAP, true, &slices);

    // Witness: the same op stream on a default-threshold DeltaCsr drains
    // the overlay at least once (pending ops stay far below the op count).
    let pool = ThreadPool::new(2);
    let witness = DeltaCsr::new(CAP, true, pool.threads());
    for batch in &batches {
        let inserts: Vec<Edge> = batch
            .iter()
            .filter(|&&(op, _, _)| op == EdgeOp::Insert)
            .map(|&(_, s, d)| Edge::new(s, d, saga_stream::edge_weight(s, d, true)))
            .collect();
        witness.update_batch(&inserts, &pool);
    }
    assert!(
        witness.pending_delta_ops() < 300,
        "program never crossed the compaction threshold (pending {})",
        witness.pending_delta_ops()
    );

    let got = check_program(&program, &CheckConfig::quick());
    assert!(got.is_none(), "{}", got.unwrap());
}

/// Every adversarial profile generates structurally valid programs whose
/// replay stays clean across the whole matrix (spot check, one seed per
/// profile — the campaigns above cover breadth).
#[test]
fn all_profiles_replay_clean() {
    for (i, profile) in ProgramProfile::ALL.into_iter().enumerate() {
        let program = OpProgram::generate(0xFACE + i as u64, profile);
        let config = CheckConfig::quick();
        let got = check_program(&program, &config);
        assert!(got.is_none(), "{profile:?}: {}", got.unwrap());
    }
}
