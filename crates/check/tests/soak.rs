//! The multi-tenant soak test — the server PR's headline artifact.
//!
//! Holds N tenants × M concurrent client streams at steady state against
//! a live `saga-server`, then proves three things:
//!
//! 1. **Admission control**: queue depth stays within each tenant's bound
//!    (sampled by a status poller for the whole run) and backpressure is
//!    actually exercised (`429`s observed, forced if the fleet was too
//!    fast to collide naturally).
//! 2. **Zero-diff replay**: every tenant's journal, replayed offline
//!    through `GraphOracle` and a from-scratch driver reference, matches
//!    the server's own `/edges` and `/values` dumps exactly (within the
//!    differential value tolerances) — across FS and INC tenants.
//! 3. **Reproducibility**: a single-stream tenant driven twice from the
//!    same seed produces byte-identical journals.
//!
//! Budget knobs (EXPERIMENTS.md §soak): `SAGA_SOAK_SECS` (steady-state
//! seconds, default 2), `SAGA_SOAK_TENANTS` (default 8),
//! `SAGA_SOAK_STREAMS` (default 4), `SAGA_SOAK_METRICS` (CSV artifact
//! path, default `target/soak-metrics.csv`).

use saga_check::loadgen::{create_tenant, drive_tenant, verify_tenant, DriveReport, TenantSpec};
use saga_server::{Client, Server, ServerConfig};
use saga_utils::parallel::ThreadPool;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use saga_utils::sync::Mutex;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parses `queue_depth N` out of a `/status` document.
fn status_depth(status: &str) -> Option<usize> {
    status
        .lines()
        .find_map(|l| l.strip_prefix("queue_depth "))
        .and_then(|v| v.trim().parse().ok())
}

/// Bursts heavy PageRank batches at a bound-1 tenant until the admission
/// controller pushes back, returning the number of `429`s observed.
/// Deterministic fallback for fleets that drained too fast to collide.
fn force_backpressure(addr: std::net::SocketAddr) -> usize {
    let mut client = Client::new(addr);
    let resp = client
        .post(
            "/tenants",
            "name=bp-probe\nstructure=as\nalgorithm=pr\nmodel=fs\ncapacity=48\nqueue_bound=1\nthreads=1\n",
        )
        .expect("create bp-probe");
    assert_eq!(resp.status, 201, "{}", resp.text());
    // A dense-ish body so each FS PageRank pass (tolerance 1e-11) costs
    // real time while submissions arrive back-to-back.
    let mut body = String::new();
    for s in 0..48u32 {
        for d in 0..6u32 {
            body.push_str(&format!("{s} {}\n", (s + d * 7 + 1) % 48));
        }
    }
    let mut rejections = 0;
    for _ in 0..2000 {
        let resp = client.post("/tenants/bp-probe/batches", &body).expect("submit");
        match resp.status {
            202 => {}
            429 => {
                rejections += 1;
                if rejections >= 3 {
                    break;
                }
            }
            other => panic!("bp-probe: unexpected status {other}: {}", resp.text()),
        }
    }
    let resp = client.delete("/tenants/bp-probe").expect("delete bp-probe");
    assert_eq!(resp.status, 204);
    rejections
}

#[test]
fn soak_multi_tenant_steady_state_with_zero_diff_replay() {
    let tenants = env_usize("SAGA_SOAK_TENANTS", 8);
    let streams = env_usize("SAGA_SOAK_STREAMS", 4);
    let secs = env_usize("SAGA_SOAK_SECS", 2);
    let metrics_path = std::env::var("SAGA_SOAK_METRICS")
        .unwrap_or_else(|_| "../../target/soak-metrics.csv".to_string());

    let server = Server::start(ServerConfig {
        workers: 8,
        accept_backlog: 64,
        ..ServerConfig::default()
    })
    .expect("bind soak server");
    let addr = server.addr();

    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| {
            let mut spec = TenantSpec::nth(i, 0x5A6A_BE4C);
            spec.streams = streams;
            spec
        })
        .collect();
    for spec in &specs {
        create_tenant(addr, spec).expect("create tenant");
    }

    // Drive every tenant concurrently; worker 0 polls each tenant's
    // status for the whole steady state, checking the admission bound.
    let deadline = Instant::now() + Duration::from_secs(secs as u64);
    let remaining = AtomicUsize::new(tenants);
    let reports: Mutex<Vec<(usize, DriveReport)>> = Mutex::new(Vec::new());
    let max_depths: Mutex<Vec<usize>> = Mutex::new(vec![0; tenants]);
    let pool = ThreadPool::new(tenants + 1);
    pool.run_on_all(|worker| {
        if worker == 0 {
            // The poller: sample /status across the fleet until every
            // driver finishes.
            let mut client = Client::new(addr);
            while remaining.load(Ordering::Acquire) > 0 {
                for (i, spec) in specs.iter().enumerate() {
                    if let Ok(resp) = client.get(&format!("/tenants/{}/status", spec.name)) {
                        if resp.status == 200 {
                            if let Some(depth) = status_depth(&resp.text()) {
                                let mut depths = max_depths.lock();
                                depths[i] = depths[i].max(depth);
                            }
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        } else {
            let spec = &specs[worker - 1];
            let report = drive_tenant(addr, spec, deadline);
            reports.lock().push((worker - 1, report));
            remaining.fetch_sub(1, Ordering::Release);
        }
    });

    // 1a. Queue depths stayed within each tenant's admission bound — both
    // as sampled live and as reported by every 202.
    let depths = max_depths.into_inner();
    let reports = reports.into_inner();
    let mut total = DriveReport::default();
    for &(i, report) in &reports {
        let bound = specs[i].queue_bound;
        assert!(
            report.max_depth <= bound,
            "tenant {} reported depth {} over bound {bound}",
            specs[i].name,
            report.max_depth
        );
        assert!(
            depths[i] <= bound,
            "tenant {} sampled depth {} over bound {bound}",
            specs[i].name,
            depths[i]
        );
        assert!(report.accepted >= 1, "tenant {} accepted nothing", specs[i].name);
        total.merge(report);
    }

    // 1b. Backpressure was genuinely exercised somewhere in the run; if
    // the fleet drained too fast to collide, force it deterministically.
    let mut rejections = total.rejected_429;
    if rejections == 0 {
        rejections = force_backpressure(addr);
    }
    assert!(
        rejections > 0,
        "no 429 observed even under a bound-1 burst — admission control is not engaging"
    );

    // 2. Zero-diff journal replay for every tenant, FS and INC alike.
    for (i, spec) in specs.iter().enumerate() {
        let verify = verify_tenant(addr, spec).unwrap_or_else(|e| panic!("replay diverged: {e}"));
        let accepted = reports.iter().find(|(t, _)| *t == i).map(|(_, r)| r.accepted).unwrap();
        assert_eq!(
            verify.batches, accepted,
            "tenant {}: journal holds {} batches but {} were accepted",
            spec.name, verify.batches, accepted
        );
    }

    // 3. Same seed ⇒ byte-identical journal (single-stream tenants, one
    // round each so submission order is total).
    let mut client = Client::new(addr);
    let mut repro_journals = Vec::new();
    for name in ["repro-a", "repro-b"] {
        let mut spec = TenantSpec::nth(1, 0xD1FF);
        spec.name = name.to_string();
        spec.streams = 1;
        create_tenant(addr, &spec).expect("create repro tenant");
        let report = drive_tenant(addr, &spec, Instant::now());
        assert!(report.accepted >= 1);
        let resp = client.get(&format!("/tenants/{name}/journal")).expect("journal");
        assert_eq!(resp.status, 200);
        repro_journals.push(resp.text());
    }
    assert_eq!(
        repro_journals[0], repro_journals[1],
        "same seed must reproduce the same journal byte-for-byte"
    );

    // Metrics snapshot artifact for CI (the default `/metrics` body is
    // now Prometheus exposition; the CSV artifact rides the query flag).
    let resp = client.get("/metrics?format=csv").expect("metrics");
    assert_eq!(resp.status, 200);
    let csv = resp.text();
    assert!(csv.contains("server.request_ns"), "missing request latency metric:\n{csv}");
    assert!(csv.contains("server.queue_depth."), "missing queue depth gauges:\n{csv}");
    assert!(csv.contains("server.tenant_batch_ns"), "missing tenant batch histogram:\n{csv}");
    if let Err(e) = std::fs::write(&metrics_path, &csv) {
        // The artifact is best-effort outside CI (path may not exist).
        saga_trace::progress!("soak: could not write metrics artifact {metrics_path}: {e}");
    }

    server.shutdown();
}
