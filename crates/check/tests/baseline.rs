//! Checked-baseline regression: `results/BENCH_update.json` is a
//! committed artifact, and this test turns its headline claim — the
//! radix-partitioned ingest beats the rescan path by ≥2× at 8 threads on
//! both deletion-capable structures — into a failing test, so regenerating
//! the baseline on a machine where the optimization regressed is caught at
//! review time. Skip with `SAGA_SKIP_BASELINE=1` when regenerating on
//! hardware where the 2× claim is not expected to hold.

use saga_check::assert_ratio_within;
use saga_check::json::{parse, Json};

fn load_baseline() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_update.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read checked baseline {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// The baseline's 8-thread rows show partitioned ingest ≥2× over rescan
/// for both AC and DAH (the deletion-capable structures it benchmarks).
#[test]
fn baseline_partitioned_ingest_beats_rescan_2x_at_8_threads() {
    if std::env::var("SAGA_SKIP_BASELINE").as_deref() == Ok("1") {
        eprintln!("[baseline] SAGA_SKIP_BASELINE=1: skipping checked-baseline assertion");
        return;
    }
    let doc = load_baseline();
    let rows = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("baseline has a results array");
    let mut eight_thread_rows = 0;
    for row in rows {
        let threads = row
            .get("threads")
            .and_then(Json::as_usize)
            .expect("row has threads");
        if threads != 8 {
            continue;
        }
        eight_thread_rows += 1;
        let structure = row
            .get("structure")
            .and_then(Json::as_str)
            .expect("row has structure");
        let rescan = row
            .get("rescan_seconds")
            .and_then(Json::as_f64)
            .expect("row has rescan_seconds");
        let partitioned = row
            .get("partitioned_seconds")
            .and_then(Json::as_f64)
            .expect("row has partitioned_seconds");
        let speedup = row
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("row has speedup");
        // The recorded speedup must match the recorded times (5% slack for
        // the file's 3-decimal rounding), and clear the 2x claim.
        assert_ratio_within!(
            &format!("baseline: {structure}@8 recorded speedup vs recomputed"),
            speedup / (rescan / partitioned),
            0.95,
            1.05
        );
        assert_ratio_within!(
            &format!("baseline: {structure}@8 partitioned-over-rescan speedup"),
            speedup,
            2.0,
            1e3
        );
    }
    assert_eq!(
        eight_thread_rows, 2,
        "baseline must carry one 8-thread row per deletion-capable structure"
    );
}
