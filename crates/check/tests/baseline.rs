//! Checked-baseline regression: `results/BENCH_update.json` is a
//! committed artifact, and this test turns its headline claim — the
//! radix-partitioned ingest beats the rescan path by ≥2× at 8 threads on
//! both deletion-capable structures — into a failing test, so regenerating
//! the baseline on a machine where the optimization regressed is caught at
//! review time. Skip with `SAGA_SKIP_BASELINE=1` when regenerating on
//! hardware where the 2× claim is not expected to hold.

use saga_check::assert_ratio_within;
use saga_check::json::{parse, Json};

fn load_json(name: &str) -> Json {
    let path = format!(
        "{}/../../results/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read checked baseline {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn load_baseline() -> Json {
    load_json("BENCH_update.json")
}

fn skip_baselines() -> bool {
    if std::env::var("SAGA_SKIP_BASELINE").as_deref() == Ok("1") {
        eprintln!("[baseline] SAGA_SKIP_BASELINE=1: skipping checked-baseline assertion");
        return true;
    }
    false
}

/// The baseline's 8-thread rows show partitioned ingest ≥2× over rescan
/// for both AC and DAH (the deletion-capable structures it benchmarks).
#[test]
fn baseline_partitioned_ingest_beats_rescan_2x_at_8_threads() {
    if skip_baselines() {
        return;
    }
    let doc = load_baseline();
    let rows = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("baseline has a results array");
    let mut eight_thread_rows = 0;
    for row in rows {
        let threads = row
            .get("threads")
            .and_then(Json::as_usize)
            .expect("row has threads");
        if threads != 8 {
            continue;
        }
        eight_thread_rows += 1;
        let structure = row
            .get("structure")
            .and_then(Json::as_str)
            .expect("row has structure");
        let rescan = row
            .get("rescan_seconds")
            .and_then(Json::as_f64)
            .expect("row has rescan_seconds");
        let partitioned = row
            .get("partitioned_seconds")
            .and_then(Json::as_f64)
            .expect("row has partitioned_seconds");
        let speedup = row
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("row has speedup");
        // The recorded speedup must match the recorded times (5% slack for
        // the file's 3-decimal rounding), and clear the 2x claim.
        assert_ratio_within!(
            &format!("baseline: {structure}@8 recorded speedup vs recomputed"),
            speedup / (rescan / partitioned),
            0.95,
            1.05
        );
        assert_ratio_within!(
            &format!("baseline: {structure}@8 partitioned-over-rescan speedup"),
            speedup,
            2.0,
            1e3
        );
    }
    assert_eq!(
        eight_thread_rows, 2,
        "baseline must carry one 8-thread row per deletion-capable structure"
    );
}

/// `results/BENCH_compute.json` carries the compute-phase claims of the
/// delta-CSR / direction-optimizing work: every one of the five structures
/// has a per-batch BFS row, the direction-optimizing kernel clears 1.5×
/// over classic top-down on the dense-frontier profile, and the simulated
/// neighbor-scan miss rate of compacted delta-CSR undercuts AS.
#[test]
fn baseline_compute_bfs_claims_hold() {
    if skip_baselines() {
        return;
    }
    let doc = load_json("BENCH_compute.json");
    let rows = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("baseline has a results array");
    let mut structures: Vec<String> = rows
        .iter()
        .map(|row| {
            let mean = row
                .get("mean_batch_seconds")
                .and_then(Json::as_f64)
                .expect("row has mean_batch_seconds");
            let total = row
                .get("total_seconds")
                .and_then(Json::as_f64)
                .expect("row has total_seconds");
            let batches = row
                .get("batches")
                .and_then(Json::as_usize)
                .expect("row has batches");
            assert!(mean > 0.0, "per-batch latency must be positive");
            // The recorded total must match mean × batches (rounding slack).
            assert_ratio_within!(
                "compute baseline: total vs mean × batches",
                total / (mean * batches as f64),
                0.95,
                1.05
            );
            row.get("structure")
                .and_then(Json::as_str)
                .expect("row has structure")
                .to_string()
        })
        .collect();
    structures.sort();
    assert_eq!(
        structures,
        ["AC", "AS", "DAH", "DeltaCSR", "Stinger"],
        "one row per structure, delta-CSR included"
    );

    let dirop = doc
        .get("direction_optimizing")
        .expect("baseline has a direction_optimizing record");
    let topdown = dirop
        .get("topdown_seconds")
        .and_then(Json::as_f64)
        .expect("record has topdown_seconds");
    let dirop_s = dirop
        .get("dirop_seconds")
        .and_then(Json::as_f64)
        .expect("record has dirop_seconds");
    let speedup = dirop
        .get("speedup")
        .and_then(Json::as_f64)
        .expect("record has speedup");
    assert_ratio_within!(
        "compute baseline: recorded dirop speedup vs recomputed",
        speedup / (topdown / dirop_s),
        0.95,
        1.05
    );
    assert_ratio_within!("compute baseline: dirop over top-down", speedup, 1.5, 1e3);
    let bottom_up = dirop
        .get("bottom_up_levels")
        .and_then(Json::as_usize)
        .expect("record has bottom_up_levels");
    assert!(bottom_up >= 1, "dense profile must trigger bottom-up levels");

    let cache = doc.get("cache").expect("baseline has a cache record");
    let as_miss = cache
        .get("as_miss_rate")
        .and_then(Json::as_f64)
        .expect("record has as_miss_rate");
    let delta_miss = cache
        .get("delta_miss_rate")
        .and_then(Json::as_f64)
        .expect("record has delta_miss_rate");
    assert!(
        0.0 < delta_miss && delta_miss < as_miss && as_miss <= 1.0,
        "delta-CSR neighbor scans must miss less than AS (delta {delta_miss}, as {as_miss})"
    );
}
