//! Kill-and-recover checks for the sharded BSP driver, plus trace
//! validation of its per-superstep spans.
//!
//! The fast tests cover every algorithm × compute model × kill phase on
//! one generated program each; the `#[ignore]`d `recovery_smoke` sweeps
//! more seeds and profiles for CI's dedicated job
//! (`cargo test -p saga-check --release -- --ignored recovery_smoke`).

use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_bsp::{KillPhase, KillSpec};
use saga_check::program::{OpProgram, ProgramProfile};
use saga_check::recovery::{check_recovery, RecoveryConfig};
use saga_graph::DataStructureKind;
use std::sync::Mutex;

/// The trace rings are process-global and one test here enables tracing;
/// serialize every test in this binary so pool spans from a concurrent
/// test can't dangle into the capture window.
static LOCK: Mutex<()> = Mutex::new(());

fn config(
    algorithm: AlgorithmKind,
    model: ComputeModelKind,
    phase: KillPhase,
) -> RecoveryConfig {
    RecoveryConfig {
        algorithm,
        model,
        structure: DataStructureKind::AdjacencyShared,
        shards: 3,
        threads: 2,
        // Superstep 1 exists in every full run of a non-trivial program;
        // if a particular batch converges earlier the spec just stays
        // armed for the next batch — the harness asserts it fired by
        // end of stream.
        kill: KillSpec {
            superstep: 1,
            shard: 1,
            phase,
        },
    }
}

#[test]
fn kill_and_recover_all_algorithms_fs() {
    let _g = LOCK.lock().unwrap();
    let program = OpProgram::generate(0x5EED_0001, ProgramProfile::Uniform);
    for algorithm in AlgorithmKind::ALL {
        for phase in [KillPhase::Scatter, KillPhase::Gather] {
            let cfg = config(algorithm, ComputeModelKind::FromScratch, phase);
            let got = check_recovery(&program, &cfg);
            assert!(got.is_none(), "{algorithm:?}/{phase:?}: {}", got.unwrap());
        }
    }
}

#[test]
fn kill_and_recover_all_algorithms_inc() {
    let _g = LOCK.lock().unwrap();
    // Delete-heavy: INC batches with deletions take the full-recompute
    // path, so both seeding modes get killed and recovered.
    let program = OpProgram::generate(0x5EED_0002, ProgramProfile::DeleteHeavy);
    for algorithm in AlgorithmKind::ALL {
        for phase in [KillPhase::Scatter, KillPhase::Gather] {
            let cfg = config(algorithm, ComputeModelKind::Incremental, phase);
            let got = check_recovery(&program, &cfg);
            assert!(got.is_none(), "{algorithm:?}/{phase:?}: {}", got.unwrap());
        }
    }
}

#[test]
fn sharded_driver_emits_valid_superstep_spans() {
    let _g = LOCK.lock().unwrap();
    use saga_algorithms::AlgorithmParams;
    use saga_core::driver::StreamDriver;

    let program = OpProgram::generate(0x5EED_0003, ProgramProfile::Uniform);
    let stream = program.to_stream();
    saga_trace::clear();
    saga_trace::set_enabled(true);
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, program.capacity)
        .algorithm(AlgorithmKind::Bfs)
        .compute_model(ComputeModelKind::FromScratch)
        .threads(2)
        .params(AlgorithmParams::default())
        .sharded(3)
        .build();
    driver.run(&stream);
    saga_trace::set_enabled(false);
    let doc = saga_trace::chrome_trace();
    saga_trace::clear();
    let stats = saga_check::tracecheck::validate(&doc).expect("sharded trace must validate");
    assert!(stats.spans > 0, "expected spans, got {stats:?}");
    assert!(
        doc.contains("bsp-superstep") && doc.contains("bsp-scatter") && doc.contains("bsp-gather"),
        "BSP phase spans missing from trace"
    );
}

/// Extended sweep for CI's `recovery-smoke` job.
#[test]
#[ignore = "extended sweep; run via CI recovery-smoke or --ignored"]
fn recovery_smoke() {
    let _g = LOCK.lock().unwrap();
    let mut checked = 0usize;
    for (i, profile) in ProgramProfile::ALL.into_iter().enumerate() {
        let program = OpProgram::generate(0xAB5_0000 + i as u64, profile);
        for algorithm in AlgorithmKind::ALL {
            for model in ComputeModelKind::ALL {
                for phase in [KillPhase::Scatter, KillPhase::Gather] {
                    let cfg = RecoveryConfig {
                        algorithm,
                        model,
                        structure: DataStructureKind::ALL_WITH_DELTA
                            [checked % DataStructureKind::ALL_WITH_DELTA.len()],
                        shards: 2 + checked % 4,
                        threads: 1 + checked % 3,
                        kill: KillSpec {
                            superstep: 1 + checked % 2,
                            shard: checked % 2,
                            phase,
                        },
                    };
                    let got = check_recovery(&program, &cfg);
                    // A kill spec aimed at a superstep no run reaches is
                    // reported as vacuous; tolerate only that outcome.
                    if let Some(detail) = got {
                        assert!(
                            detail.contains("never fired"),
                            "{profile:?}/{algorithm:?}/{model:?}/{phase:?}: {detail}"
                        );
                    }
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 144, "sweep shrank: {checked}");
}
