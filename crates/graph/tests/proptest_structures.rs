//! Property-based differential tests: every data structure must match the
//! sequential oracle on arbitrary batched edge streams, directed and
//! undirected, under concurrent updates.

use proptest::prelude::*;
use saga_graph::oracle::GraphOracle;
use saga_graph::{build_graph, DataStructureKind, Edge, Node};
use saga_utils::parallel::ThreadPool;

const MAX_NODES: usize = 48;

fn arb_edge() -> impl Strategy<Value = (Node, Node)> {
    (0..MAX_NODES as Node, 0..MAX_NODES as Node)
}

/// Batches of edges; weights derived from the pair so duplicates agree.
fn arb_batches() -> impl Strategy<Value = Vec<Vec<Edge>>> {
    prop::collection::vec(prop::collection::vec(arb_edge(), 0..120), 1..5).prop_map(|batches| {
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(s, d)| {
                        // Canonical-pair weights: undirected graphs must
                        // weigh (a, b) and (b, a) identically.
                        let (a, b) = if s <= d { (s, d) } else { (d, s) };
                        Edge::new(s, d, 1.0 + (saga_utils::hash::hash_edge(a, b) % 16) as f32)
                    })
                    .collect()
            })
            .collect()
    })
}

fn check_structure_against_oracle(
    kind: DataStructureKind,
    directed: bool,
    batches: &[Vec<Edge>],
    threads: usize,
) {
    let pool = ThreadPool::new(threads);
    let graph = build_graph(kind, MAX_NODES, directed, pool.threads());
    let mut oracle = GraphOracle::new(MAX_NODES, directed);
    for batch in batches {
        graph.update_batch(batch, &pool);
        oracle.insert_batch(batch);
    }
    oracle.assert_matches(graph.as_ref(), true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn adjacency_shared_matches_oracle(batches in arb_batches(), directed in any::<bool>()) {
        check_structure_against_oracle(DataStructureKind::AdjacencyShared, directed, &batches, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn adjacency_chunked_matches_oracle(batches in arb_batches(), directed in any::<bool>()) {
        check_structure_against_oracle(DataStructureKind::AdjacencyChunked, directed, &batches, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn stinger_matches_oracle(batches in arb_batches(), directed in any::<bool>()) {
        check_structure_against_oracle(DataStructureKind::Stinger, directed, &batches, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn dah_matches_oracle(batches in arb_batches(), directed in any::<bool>()) {
        check_structure_against_oracle(DataStructureKind::Dah, directed, &batches, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn single_threaded_pool_equals_multithreaded(batches in arb_batches()) {
        // Thread count must never change the resulting topology.
        for kind in DataStructureKind::ALL {
            let single = {
                let pool = ThreadPool::new(1);
                let g = build_graph(kind, MAX_NODES, true, pool.threads());
                for b in &batches { g.update_batch(b, &pool); }
                g
            };
            let multi = {
                let pool = ThreadPool::new(4);
                let g = build_graph(kind, MAX_NODES, true, pool.threads());
                for b in &batches { g.update_batch(b, &pool); }
                g
            };
            prop_assert_eq!(single.num_edges(), multi.num_edges());
            for v in 0..MAX_NODES as Node {
                let mut a = single.out_neighbors(v);
                let mut b = multi.out_neighbors(v);
                a.sort_by_key(|&(n, _)| n);
                b.sort_by_key(|&(n, _)| n);
                prop_assert_eq!(a, b, "kind {:?} vertex {}", kind, v);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn csr_snapshot_is_faithful(batches in arb_batches(), directed in any::<bool>()) {
        let pool = ThreadPool::new(2);
        let graph = build_graph(DataStructureKind::Stinger, MAX_NODES, directed, pool.threads());
        for b in &batches {
            graph.update_batch(b, &pool);
        }
        let csr = saga_graph::csr::Csr::from_graph(graph.as_ref());
        prop_assert_eq!(csr.num_edges(), graph.num_edges());
        for v in 0..MAX_NODES as Node {
            let mut dynamic = graph.out_neighbors(v);
            dynamic.sort_by_key(|&(n, _)| n);
            prop_assert_eq!(csr.out_neighbors(v), &dynamic[..]);
            let mut dynamic_in = graph.in_neighbors(v);
            dynamic_in.sort_by_key(|&(n, _)| n);
            prop_assert_eq!(csr.in_neighbors(v), &dynamic_in[..]);
        }
    }
}
