//! Property-based tests of the multi-snapshot store: every historical
//! version must equal a reference graph built from the corresponding batch
//! prefix.

use proptest::prelude::*;
use saga_graph::oracle::GraphOracle;
use saga_graph::snapshots::SnapshotStore;
use saga_graph::{Edge, GraphTopology, Node};

const MAX_NODES: usize = 32;

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Edge>>> {
    prop::collection::vec(
        prop::collection::vec((0..MAX_NODES as Node, 0..MAX_NODES as Node), 0..60),
        1..6,
    )
    .prop_map(|batches| {
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(s, d)| {
                        Edge::new(s, d, 1.0 + (saga_utils::hash::hash_edge(s, d) % 8) as f32)
                    })
                    .collect()
            })
            .collect()
    })
}

fn check_version_matches_prefix(
    store: &SnapshotStore,
    version: usize,
    prefix: &[Vec<Edge>],
    directed: bool,
) -> Result<(), TestCaseError> {
    let mut oracle = GraphOracle::new(MAX_NODES, directed);
    for batch in prefix {
        oracle.insert_batch(batch);
    }
    let view = store.snapshot(version);
    prop_assert_eq!(view.num_edges(), oracle.num_edges(), "version {}", version);
    for v in 0..MAX_NODES as Node {
        let mut got = view.out_neighbors(v);
        got.sort_by_key(|&(n, _)| n);
        prop_assert_eq!(
            got,
            oracle.out_neighbors(v),
            "out-neighbors of {} at version {}",
            v,
            version
        );
        let mut got_in = view.in_neighbors(v);
        got_in.sort_by_key(|&(n, _)| n);
        prop_assert_eq!(
            got_in,
            oracle.in_neighbors(v),
            "in-neighbors of {} at version {}",
            v,
            version
        );
        prop_assert_eq!(view.out_degree(v), oracle.out_degree(v));
        prop_assert_eq!(view.in_degree(v), oracle.in_degree(v));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn every_version_matches_its_prefix(batches in arb_batches(), directed in any::<bool>()) {
        let mut store = SnapshotStore::new(MAX_NODES, directed);
        for batch in &batches {
            store.ingest_batch(batch);
        }
        prop_assert_eq!(store.num_snapshots(), batches.len());
        for version in 0..batches.len() {
            check_version_matches_prefix(&store, version, &batches[..=version], directed)?;
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn latest_is_the_last_version(batches in arb_batches()) {
        let mut store = SnapshotStore::new(MAX_NODES, true);
        for batch in &batches {
            store.ingest_batch(batch);
        }
        let latest = store.latest().expect("at least one batch");
        prop_assert_eq!(latest.version(), batches.len() - 1);
    }
}
