//! Property-based differential tests for radix-partitioned batch ingestion:
//! arbitrary interleavings of insert and delete batches — duplicates, self
//! loops, and all — routed through the partitioner must leave every
//! structure identical to the sequential single-threaded oracle, for any
//! thread count.
//!
//! Weights are canonical per undirected pair (`hash_edge(min, max)`), so
//! every duplicate of an edge carries the same weight and the comparison
//! can include weights: first-wins races cannot hide behind the winner.

use proptest::prelude::*;
use saga_graph::oracle::GraphOracle;
use saga_graph::{build_deletable_graph_with, DataStructureKind, Edge, Node};
use saga_utils::hash::hash_edge;
use saga_utils::parallel::ThreadPool;

const MAX_NODES: usize = 40;

#[derive(Debug, Clone)]
enum Batch {
    Insert(Vec<Edge>),
    Delete(Vec<Edge>),
}

fn canonical_weight(s: Node, d: Node) -> f32 {
    1.0 + (hash_edge(s.min(d), s.max(d)) % 8) as f32
}

fn arb_edges(max_len: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..MAX_NODES as Node, 0..MAX_NODES as Node), 0..max_len).prop_map(
        |pairs| {
            pairs
                .into_iter()
                .map(|(s, d)| Edge::new(s, d, canonical_weight(s, d)))
                .collect()
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Batch>> {
    prop::collection::vec(
        prop_oneof![
            2 => arb_edges(80).prop_map(Batch::Insert),
            1 => arb_edges(40).prop_map(Batch::Delete),
        ],
        1..8,
    )
}

fn check(kind: DataStructureKind, directed: bool, ops: &[Batch], threads: usize) {
    let pool = ThreadPool::new(threads);
    let graph = build_deletable_graph_with(kind, MAX_NODES, directed, pool.threads(), true);
    let mut oracle = GraphOracle::new(MAX_NODES, directed);
    for op in ops {
        match op {
            Batch::Insert(batch) => {
                graph.update_batch(batch, &pool);
                oracle.insert_batch(batch);
            }
            Batch::Delete(batch) => {
                graph.delete_batch(batch, &pool);
                oracle.delete_batch(batch);
            }
        }
    }
    oracle.assert_matches(graph.as_ref(), true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn as_partitioned_matches_oracle(
        ops in arb_ops(),
        directed in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        check(DataStructureKind::AdjacencyShared, directed, &ops, threads);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn ac_partitioned_matches_oracle(
        ops in arb_ops(),
        directed in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        check(DataStructureKind::AdjacencyChunked, directed, &ops, threads);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn stinger_partitioned_matches_oracle(
        ops in arb_ops(),
        directed in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        check(DataStructureKind::Stinger, directed, &ops, threads);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn dah_partitioned_matches_oracle(
        ops in arb_ops(),
        directed in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        check(DataStructureKind::Dah, directed, &ops, threads);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn rescan_and_partitioned_chunked_paths_agree(
        edges in arb_edges(120),
        directed in any::<bool>(),
    ) {
        // The explicit O(batch × chunks) baseline kept for benchmarking
        // must stay interchangeable with the partitioned fast path.
        let pool = ThreadPool::new(4);
        let partitioned =
            saga_graph::adjacency_chunked::AdjacencyChunked::new(MAX_NODES, directed, 4);
        let rescan =
            saga_graph::adjacency_chunked::AdjacencyChunked::new(MAX_NODES, directed, 4);
        use saga_graph::{DynamicGraph, GraphTopology};
        partitioned.update_batch(&edges, &pool);
        rescan.update_batch_rescan(&edges, &pool);
        prop_assert_eq!(partitioned.num_edges(), rescan.num_edges());
        for v in 0..MAX_NODES as Node {
            let mut a = partitioned.out_neighbors(v);
            let mut b = rescan.out_neighbors(v);
            a.sort_by_key(|&(n, _)| n);
            b.sort_by_key(|&(n, _)| n);
            prop_assert_eq!(a, b, "out lists differ at {}", v);
        }
    }
}
