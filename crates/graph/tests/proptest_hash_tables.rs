//! Property-based tests of the DAH hash tables against map models:
//! Robin Hood insert/find/traverse/remove and open-addressing
//! insert/contains must match `BTreeMap` semantics through arbitrary
//! operation sequences.

use proptest::prelude::*;
use saga_graph::hash_tables::{OpenEdgeTable, RobinHoodEdgeTable};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum RhOp {
    Insert(u32, u32),
    RemoveVertex(u32),
}

fn arb_rh_ops() -> impl Strategy<Value = Vec<RhOp>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u32..20, 0u32..200).prop_map(|(s, d)| RhOp::Insert(s, d)),
            1 => (0u32..20).prop_map(RhOp::RemoveVertex),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn robin_hood_matches_btree_model(ops in arb_rh_ops()) {
        let mut table = RobinHoodEdgeTable::new();
        let mut model: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for op in &ops {
            match *op {
                RhOp::Insert(src, dst) => {
                    let w = (src * 31 + dst) as f32;
                    let inserted = table.insert(src, dst, w);
                    let expected = !model.contains_key(&(src, dst));
                    prop_assert_eq!(inserted, expected, "insert ({}, {})", src, dst);
                    model.entry((src, dst)).or_insert(w);
                }
                RhOp::RemoveVertex(src) => {
                    let mut removed = table.remove_vertex(src);
                    removed.sort_by_key(|&(d, _)| d);
                    let expected: Vec<(u32, f32)> = model
                        .range((src, 0)..=(src, u32::MAX))
                        .map(|(&(_, d), &w)| (d, w))
                        .collect();
                    prop_assert_eq!(&removed, &expected, "remove_vertex {}", src);
                    model.retain(|&(s, _), _| s != src);
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final state: every vertex's cluster matches the model.
        for src in 0..20u32 {
            let mut got = table.neighbors_of(src);
            got.sort_by_key(|&(d, _)| d);
            let expected: Vec<(u32, f32)> = model
                .range((src, 0)..=(src, u32::MAX))
                .map(|(&(_, d), &w)| (d, w))
                .collect();
            prop_assert_eq!(got, expected, "final cluster of {}", src);
        }
        // Find agrees with the model everywhere.
        for (&(s, d), &w) in &model {
            prop_assert_eq!(table.find(s, d), Some(w));
        }
        prop_assert_eq!(table.find(21, 0), None);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn open_table_matches_set_model(dsts in prop::collection::vec(0u32..500, 0..600)) {
        let mut table = OpenEdgeTable::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &d in &dsts {
            let inserted = table.insert(d, d as f32);
            prop_assert_eq!(inserted, model.insert(d));
        }
        prop_assert_eq!(table.len(), model.len());
        for d in 0..500u32 {
            prop_assert_eq!(table.contains(d), model.contains(&d));
        }
        let mut collected: Vec<u32> = Vec::new();
        table.for_each(&mut |d, _| collected.push(d));
        collected.sort_unstable();
        let expected: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }
}
