//! Deterministic fixed-seed differential stress test for partitioned batch
//! ingestion — the Miri-runnable complement to the proptest suite.
//!
//! Proptest's fork/persistence machinery and case counts make it a poor fit
//! for `cargo miri test`, so this test drives the same oracle comparison
//! from a fixed-seed `Xoshiro256++` stream: identical edges, batches, and
//! structure state on every run, on every machine. Under Miri the model is
//! scaled down (fewer vertices, rounds, and edges) so the interpreter
//! finishes in seconds while still exercising the partitioner's parallel
//! histogram/scatter passes and the pool's fork-join on 2 workers.

use rand_xoshiro::rand_core::{RngCore, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;
use saga_graph::oracle::GraphOracle;
use saga_graph::{build_deletable_graph_with, DataStructureKind, Edge, Node};
use saga_utils::hash::hash_edge;
use saga_utils::parallel::ThreadPool;

#[cfg(miri)]
const MAX_NODES: usize = 12;
#[cfg(not(miri))]
const MAX_NODES: usize = 48;

#[cfg(miri)]
const ROUNDS: usize = 3;
#[cfg(not(miri))]
const ROUNDS: usize = 10;

#[cfg(miri)]
const INSERTS_PER_ROUND: usize = 16;
#[cfg(not(miri))]
const INSERTS_PER_ROUND: usize = 120;

/// Canonical per-pair weight so duplicate edges agree and the oracle
/// comparison can include weights (first-wins races cannot hide).
fn canonical_weight(s: Node, d: Node) -> f32 {
    1.0 + (hash_edge(s.min(d), s.max(d)) % 8) as f32
}

fn random_edges(rng: &mut Xoshiro256PlusPlus, count: usize) -> Vec<Edge> {
    (0..count)
        .map(|_| {
            let s = (rng.next_u64() % MAX_NODES as u64) as Node;
            let d = (rng.next_u64() % MAX_NODES as u64) as Node;
            Edge::new(s, d, canonical_weight(s, d))
        })
        .collect()
}

/// Interleaves insert and delete batches against one structure and the
/// sequential oracle; every round must leave them identical.
fn stress(kind: DataStructureKind, directed: bool, seed: u64) {
    let pool = ThreadPool::new(2);
    let graph = build_deletable_graph_with(kind, MAX_NODES, directed, pool.threads(), true);
    let mut oracle = GraphOracle::new(MAX_NODES, directed);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    for round in 0..ROUNDS {
        let inserts = random_edges(&mut rng, INSERTS_PER_ROUND);
        graph.update_batch(&inserts, &pool);
        oracle.insert_batch(&inserts);
        // Delete a mix of just-inserted and never-present edges.
        let deletes = random_edges(&mut rng, INSERTS_PER_ROUND / 2);
        graph.delete_batch(&deletes, &pool);
        oracle.delete_batch(&deletes);
        assert_eq!(
            oracle.num_edges(),
            graph.num_edges(),
            "{kind:?} diverged from oracle in round {round}"
        );
    }
    oracle.assert_matches(graph.as_ref(), true);
}

#[test]
fn adjacency_shared_matches_oracle() {
    stress(DataStructureKind::AdjacencyShared, false, 0x5A6A_0001);
}

#[test]
fn adjacency_chunked_matches_oracle() {
    stress(DataStructureKind::AdjacencyChunked, true, 0x5A6A_0002);
}

#[test]
fn stinger_matches_oracle() {
    stress(DataStructureKind::Stinger, false, 0x5A6A_0003);
}

#[test]
fn dah_matches_oracle() {
    stress(DataStructureKind::Dah, true, 0x5A6A_0004);
}
