//! Property-based differential tests for the deletion extension: arbitrary
//! interleavings of insert and delete batches must leave every structure
//! identical to the sequential oracle.

use proptest::prelude::*;
use saga_graph::oracle::GraphOracle;
use saga_graph::{build_deletable_graph, DataStructureKind, Edge, Node};
use saga_utils::parallel::ThreadPool;

const MAX_NODES: usize = 40;

#[derive(Debug, Clone)]
enum Batch {
    Insert(Vec<Edge>),
    Delete(Vec<Edge>),
}

fn arb_edges(max_len: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..MAX_NODES as Node, 0..MAX_NODES as Node), 0..max_len).prop_map(
        |pairs| {
            pairs
                .into_iter()
                .map(|(s, d)| {
                    Edge::new(s, d, 1.0 + (saga_utils::hash::hash_edge(s, d) % 8) as f32)
                })
                .collect()
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Batch>> {
    prop::collection::vec(
        prop_oneof![
            2 => arb_edges(80).prop_map(Batch::Insert),
            1 => arb_edges(40).prop_map(Batch::Delete),
        ],
        1..8,
    )
}

fn check(kind: DataStructureKind, directed: bool, ops: &[Batch], threads: usize) {
    let pool = ThreadPool::new(threads);
    let graph = build_deletable_graph(kind, MAX_NODES, directed, pool.threads());
    let mut oracle = GraphOracle::new(MAX_NODES, directed);
    for op in ops {
        match op {
            Batch::Insert(batch) => {
                graph.update_batch(batch, &pool);
                oracle.insert_batch(batch);
            }
            Batch::Delete(batch) => {
                let got = graph.delete_batch(batch, &pool);
                let want = oracle.delete_batch(batch);
                // Accounting parity: every structure reports the oracle's
                // removed/missing split, not just the right topology.
                assert_eq!(
                    (got.removed, got.missing),
                    (want.removed, want.missing),
                    "DeleteStats mismatch on {kind:?} (directed={directed})"
                );
            }
        }
    }
    oracle.assert_matches(graph.as_ref(), false);
}

/// Builds a deletion batch that stresses the corner semantics: reversed
/// endpoints (hit for undirected graphs, miss for directed) and
/// batch-internal repeats (removed once, missing once). `picks` indexes
/// into the inserted edges modulo their count.
fn tricky_deletes(inserted: &[Edge], picks: &[(usize, bool, bool)]) -> Vec<Edge> {
    let mut batch = Vec::new();
    for &(i, reverse, repeat) in picks {
        if inserted.is_empty() {
            break;
        }
        let e = inserted[i % inserted.len()];
        let edge = if reverse {
            Edge::new(e.dst, e.src, e.weight)
        } else {
            e
        };
        batch.push(edge);
        if repeat {
            batch.push(edge);
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn as_matches_oracle_under_churn(ops in arb_ops(), directed in any::<bool>()) {
        check(DataStructureKind::AdjacencyShared, directed, &ops, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn ac_matches_oracle_under_churn(ops in arb_ops(), directed in any::<bool>()) {
        check(DataStructureKind::AdjacencyChunked, directed, &ops, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn stinger_matches_oracle_under_churn(ops in arb_ops(), directed in any::<bool>()) {
        check(DataStructureKind::Stinger, directed, &ops, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn dah_matches_oracle_under_churn(ops in arb_ops(), directed in any::<bool>()) {
        check(DataStructureKind::Dah, directed, &ops, 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn delete_stats_agree_across_structures(
        inserted in arb_edges(60),
        picks in prop::collection::vec((0..1000usize, any::<bool>(), any::<bool>()), 0..30),
        directed in any::<bool>()
    ) {
        let deletes = tricky_deletes(&inserted, &picks);
        let ops = vec![Batch::Insert(inserted), Batch::Delete(deletes)];
        for kind in DataStructureKind::ALL {
            check(kind, directed, &ops, 3);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn delete_everything_leaves_an_empty_graph(edges in arb_edges(120)) {
        for kind in DataStructureKind::ALL {
            let pool = ThreadPool::new(3);
            let graph = build_deletable_graph(kind, MAX_NODES, true, pool.threads());
            graph.update_batch(&edges, &pool);
            let inserted = graph.num_edges();
            let stats = graph.delete_batch(&edges, &pool);
            prop_assert_eq!(stats.removed, inserted, "{:?}", kind);
            prop_assert_eq!(graph.num_edges(), 0, "{:?}", kind);
            for v in 0..MAX_NODES as Node {
                prop_assert_eq!(graph.out_degree(v), 0);
                prop_assert_eq!(graph.in_degree(v), 0);
                prop_assert!(graph.out_neighbors(v).is_empty());
            }
        }
    }
}
