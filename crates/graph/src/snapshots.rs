//! Multi-snapshot graph store (the paper's footnote-1 extension).
//!
//! SAGA-Bench v1 maintains only the latest snapshot of the evolving graph;
//! the paper lists the *multi-snapshot model* of systems like Chronos and
//! LLAMA as a future addition. This module provides it: every ingested
//! batch creates a new immutable version as a compact delta over the
//! previous one, so analytics can run over *any* historical version — or
//! over several versions at once for temporal queries — while ingestion
//! continues.
//!
//! Storage is LLAMA-flavored: one small CSR-like delta per version holding
//! only the vertices whose adjacency grew in that batch; a version's
//! neighborhood is the concatenation of its delta chain. Edges are
//! deduplicated at ingest (search through the chain before insert, the
//! same rule as §III-A).

use crate::{Edge, GraphTopology, Node, Weight};
use std::collections::HashMap;

/// One version's delta: adjacency added by a single batch.
#[derive(Debug, Clone, Default)]
struct Delta {
    /// Touched vertex → freshly added out-neighbors.
    out: HashMap<Node, Vec<(Node, Weight)>>,
    /// Touched vertex → freshly added in-neighbors.
    inn: HashMap<Node, Vec<(Node, Weight)>>,
    /// Logical edges in the graph as of this version.
    cumulative_edges: usize,
}

/// An append-only, versioned graph: one immutable snapshot per batch.
///
/// # Examples
///
/// ```
/// use saga_graph::snapshots::SnapshotStore;
/// use saga_graph::{Edge, GraphTopology};
///
/// let mut store = SnapshotStore::new(4, true);
/// store.ingest_batch(&[Edge::new(0, 1, 1.0)]);
/// store.ingest_batch(&[Edge::new(1, 2, 1.0)]);
/// let v0 = store.snapshot(0);
/// let v1 = store.snapshot(1);
/// assert_eq!(v0.num_edges(), 1); // history is preserved
/// assert_eq!(v1.num_edges(), 2);
/// assert_eq!(v0.out_degree(1), 0);
/// assert_eq!(v1.out_degree(1), 1);
/// ```
#[derive(Debug)]
pub struct SnapshotStore {
    capacity: usize,
    directed: bool,
    deltas: Vec<Delta>,
}

impl SnapshotStore {
    /// Creates an empty store over vertex ids `0..capacity`.
    pub fn new(capacity: usize, directed: bool) -> Self {
        Self {
            capacity,
            directed,
            deltas: Vec::new(),
        }
    }

    /// Number of versions (one per ingested batch).
    pub fn num_snapshots(&self) -> usize {
        self.deltas.len()
    }

    /// Vertex-universe size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether edge `(src, dst)` exists in the out-adjacency as of the
    /// latest version.
    fn contains_out(&self, src: Node, dst: Node) -> bool {
        self.deltas.iter().any(|d| {
            d.out
                .get(&src)
                .is_some_and(|ns| ns.iter().any(|&(n, _)| n == dst))
        })
    }

    /// Ingests a batch, creating a new version. Returns the number of
    /// logical edges the batch added.
    pub fn ingest_batch(&mut self, batch: &[Edge]) -> usize {
        let mut delta = Delta {
            cumulative_edges: self.deltas.last().map(|d| d.cumulative_edges).unwrap_or(0),
            ..Delta::default()
        };
        let mut inserted = 0;
        for &Edge { src, dst, weight } in batch {
            assert!(
                (src as usize) < self.capacity && (dst as usize) < self.capacity,
                "edge ({src}, {dst}) outside capacity {}",
                self.capacity
            );
            // Search-before-insert across the whole chain plus this delta.
            let (a, b) = if self.directed || src <= dst {
                (src, dst)
            } else {
                (dst, src)
            };
            let already = self.contains_out(a, b)
                || delta
                    .out
                    .get(&a)
                    .is_some_and(|ns| ns.iter().any(|&(n, _)| n == b));
            if already {
                continue;
            }
            inserted += 1;
            delta.out.entry(a).or_default().push((b, weight));
            if self.directed {
                delta.inn.entry(b).or_default().push((a, weight));
            } else if a != b {
                delta.out.entry(b).or_default().push((a, weight));
            }
        }
        delta.cumulative_edges += inserted;
        self.deltas.push(delta);
        inserted
    }

    /// A read-only view of the graph as of `version` (0-based batch
    /// index).
    ///
    /// # Panics
    ///
    /// Panics if `version >= num_snapshots()`.
    pub fn snapshot(&self, version: usize) -> SnapshotView<'_> {
        assert!(
            version < self.deltas.len(),
            "version {version} out of range {}",
            self.deltas.len()
        );
        SnapshotView {
            store: self,
            version,
        }
    }

    /// The latest version, if any batch has been ingested.
    pub fn latest(&self) -> Option<SnapshotView<'_>> {
        self.num_snapshots()
            .checked_sub(1)
            .map(|v| self.snapshot(v))
    }
}

/// An immutable view of one version. Implements [`GraphTopology`], so every
/// algorithm in the suite runs on historical versions unchanged.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    store: &'a SnapshotStore,
    version: usize,
}

impl SnapshotView<'_> {
    /// The version index this view pins.
    pub fn version(&self) -> usize {
        self.version
    }

    fn chain(&self) -> impl Iterator<Item = &Delta> {
        self.store.deltas[..=self.version].iter()
    }
}

impl GraphTopology for SnapshotView<'_> {
    fn capacity(&self) -> usize {
        self.store.capacity
    }

    fn num_edges(&self) -> usize {
        self.store.deltas[self.version].cumulative_edges
    }

    fn is_directed(&self) -> bool {
        self.store.directed
    }

    fn out_degree(&self, v: Node) -> usize {
        self.chain()
            .filter_map(|d| d.out.get(&v))
            .map(Vec::len)
            .sum()
    }

    fn in_degree(&self, v: Node) -> usize {
        if self.store.directed {
            self.chain()
                .filter_map(|d| d.inn.get(&v))
                .map(Vec::len)
                .sum()
        } else {
            self.out_degree(v)
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        for delta in self.chain() {
            if let Some(ns) = delta.out.get(&v) {
                for &(n, w) in ns {
                    f(n, w);
                }
            }
        }
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        if self.store.directed {
            for delta in self.chain() {
                if let Some(ns) = delta.inn.get(&v) {
                    for &(n, w) in ns {
                        f(n, w);
                    }
                }
            }
        } else {
            self.for_each_out_neighbor(v, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_isolated() {
        let mut store = SnapshotStore::new(5, true);
        store.ingest_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)]);
        store.ingest_batch(&[Edge::new(0, 3, 1.0)]);
        store.ingest_batch(&[Edge::new(4, 0, 1.0)]);
        assert_eq!(store.num_snapshots(), 3);
        assert_eq!(store.snapshot(0).out_degree(0), 2);
        assert_eq!(store.snapshot(1).out_degree(0), 3);
        assert_eq!(store.snapshot(2).out_degree(0), 3);
        assert_eq!(store.snapshot(2).in_degree(0), 1);
        assert_eq!(store.snapshot(1).in_degree(0), 0);
        assert_eq!(store.snapshot(0).num_edges(), 2);
        assert_eq!(store.snapshot(2).num_edges(), 4);
    }

    #[test]
    fn duplicates_across_versions_are_rejected() {
        let mut store = SnapshotStore::new(3, true);
        assert_eq!(store.ingest_batch(&[Edge::new(0, 1, 1.0)]), 1);
        assert_eq!(store.ingest_batch(&[Edge::new(0, 1, 2.0), Edge::new(1, 2, 1.0)]), 1);
        let latest = store.latest().unwrap();
        assert_eq!(latest.num_edges(), 2);
        assert_eq!(latest.out_neighbors(0), vec![(1, 1.0)]);
    }

    #[test]
    fn undirected_snapshots_mirror() {
        let mut store = SnapshotStore::new(4, false);
        store.ingest_batch(&[Edge::new(2, 1, 1.5), Edge::new(1, 2, 1.5)]);
        let view = store.snapshot(0);
        assert_eq!(view.num_edges(), 1);
        assert_eq!(view.out_neighbors(1), vec![(2, 1.5)]);
        assert_eq!(view.out_neighbors(2), vec![(1, 1.5)]);
        assert_eq!(view.in_degree(1), 1);
    }

    #[test]
    fn algorithms_run_on_historical_versions() {
        // BFS depths on version 0 must ignore edges added later.
        let mut store = SnapshotStore::new(4, true);
        store.ingest_batch(&[Edge::new(0, 1, 1.0)]);
        store.ingest_batch(&[Edge::new(1, 2, 1.0), Edge::new(2, 3, 1.0)]);
        let v0 = store.snapshot(0);
        let v1 = store.snapshot(1);
        // Simple sequential BFS over the GraphTopology API.
        let depths = |view: &SnapshotView<'_>| {
            let mut depth = vec![u32::MAX; 4];
            depth[0] = 0;
            let mut frontier = vec![0u32];
            while let Some(v) = frontier.pop() {
                let d = depth[v as usize];
                view.for_each_out_neighbor(v, &mut |n, _| {
                    if depth[n as usize] > d + 1 {
                        depth[n as usize] = d + 1;
                        frontier.push(n);
                    }
                });
            }
            depth
        };
        assert_eq!(depths(&v0), vec![0, 1, u32::MAX, u32::MAX]);
        assert_eq!(depths(&v1), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_version_panics() {
        let store = SnapshotStore::new(2, true);
        let _ = store.snapshot(0);
    }
}
