//! Hash tables underpinning degree-aware hashing (DAH, §III-A4, Fig. 5).
//!
//! DAH keeps edges of *low-degree* vertices in a Robin Hood hash table and
//! edges of *high-degree* vertices in per-vertex open-addressing tables
//! (following Iwabuchi et al.'s DegAwareRHH, which the paper implements).
//!
//! The low-degree table hashes an edge by its **source vertex only**, so all
//! edges of one vertex land in a single probe cluster — that is what makes
//! both neighbor traversal and the low→high *flush* meta-operation possible
//! without scanning the whole table.

use crate::{Node, Weight};
use saga_utils::hash::{hash_node, mix64};
use saga_utils::probe;

const INITIAL_CAPACITY: usize = 64;
const MAX_LOAD_NUM: usize = 7; // load factor 7/10
const MAX_LOAD_DEN: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq)]
struct LowSlot {
    src: Node,
    dst: Node,
    weight: Weight,
    /// Distance from the ideal slot (the "probe distance" of Fig. 5).
    probe_distance: u16,
}

/// Robin Hood hash table holding `(src, dst, weight)` edges for low-degree
/// vertices, clustered by source vertex.
///
/// # Examples
///
/// ```
/// use saga_graph::hash_tables::RobinHoodEdgeTable;
///
/// let mut t = RobinHoodEdgeTable::new();
/// assert!(t.insert(3, 7, 1.0));
/// assert!(!t.insert(3, 7, 2.0)); // duplicate edge
/// assert_eq!(t.neighbors_of(3), vec![(7, 1.0)]);
/// ```
#[derive(Debug, Clone)]
pub struct RobinHoodEdgeTable {
    slots: Vec<Option<LowSlot>>,
    len: usize,
}

impl Default for RobinHoodEdgeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RobinHoodEdgeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            slots: vec![None; INITIAL_CAPACITY],
            len: 0,
        }
    }

    /// Number of stored edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table stores no edges.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ideal_slot(&self, src: Node) -> usize {
        (hash_node(src) as usize) & (self.slots.len() - 1)
    }

    /// Searches for edge `(src, dst)`; returns its weight if present.
    pub fn find(&self, src: Node, dst: Node) -> Option<Weight> {
        // Capacity is always a power of two, so the wrap is a mask — hoisted
        // out of the probe loop to keep the per-slot step division-free.
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(src);
        let mut dist = 0u16;
        loop {
            probe::value_read(&self.slots[i]);
            match &self.slots[i] {
                None => return None,
                Some(slot) => {
                    if slot.src == src && slot.dst == dst {
                        return Some(slot.weight);
                    }
                    // Robin Hood invariant: once we have probed farther than
                    // the resident, the key cannot be in the table.
                    if slot.probe_distance < dist {
                        return None;
                    }
                }
            }
            i = (i + 1) & mask;
            dist += 1;
        }
    }

    /// Inserts `(src, dst, weight)` if absent. Returns `true` when inserted.
    pub fn insert(&mut self, src: Node, dst: Node, weight: Weight) -> bool {
        if self.find(src, dst).is_some() {
            return false;
        }
        if (self.len + 1) * MAX_LOAD_DEN > self.slots.len() * MAX_LOAD_NUM {
            self.grow();
        }
        self.insert_unchecked(LowSlot {
            src,
            dst,
            weight,
            probe_distance: 0,
        });
        self.len += 1;
        true
    }

    fn insert_unchecked(&mut self, mut incoming: LowSlot) {
        let mask = self.slots.len() - 1;
        let mut i = (hash_node(incoming.src) as usize) & mask;
        incoming.probe_distance = 0;
        loop {
            probe::value_read(&self.slots[i]);
            match &mut self.slots[i] {
                slot @ None => {
                    probe::value_write(slot);
                    *slot = Some(incoming);
                    return;
                }
                Some(resident) => {
                    if resident.probe_distance < incoming.probe_distance {
                        // Rob the rich: displace the resident.
                        probe::value_write(resident);
                        std::mem::swap(resident, &mut incoming);
                    }
                }
            }
            i = (i + 1) & mask;
            incoming.probe_distance += 1;
            probe::instructions(1);
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(INITIAL_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        for slot in old.into_iter().flatten() {
            self.insert_unchecked(slot);
        }
    }

    /// Visits the cluster of `src`, yielding each of its `(dst, weight)`
    /// edges — the low-degree traversal path of DAH.
    pub fn for_each_neighbor(&self, src: Node, f: &mut dyn FnMut(Node, Weight)) {
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(src);
        let mut dist = 0u16;
        loop {
            probe::value_read(&self.slots[i]);
            match &self.slots[i] {
                None => return,
                Some(slot) => {
                    if slot.src == src {
                        f(slot.dst, slot.weight);
                    } else if slot.probe_distance < dist {
                        // Past the cluster that could contain `src`.
                        return;
                    }
                }
            }
            i = (i + 1) & mask;
            dist += 1;
        }
    }

    /// Collects the neighbors of `src` (convenience; allocates).
    pub fn neighbors_of(&self, src: Node) -> Vec<(Node, Weight)> {
        let mut out = Vec::new();
        self.for_each_neighbor(src, &mut |n, w| out.push((n, w)));
        out
    }

    /// Removes edge `(src, dst)` if present. Returns `true` when removed.
    pub fn remove_edge(&mut self, src: Node, dst: Node) -> bool {
        if self.find(src, dst).is_some() {
            self.remove(src, dst);
            true
        } else {
            false
        }
    }

    /// Removes and returns every edge of `src` — the low→high *flush*
    /// meta-operation of DAH (§III-A4).
    pub fn remove_vertex(&mut self, src: Node) -> Vec<(Node, Weight)> {
        let removed = self.neighbors_of(src);
        for &(dst, _) in &removed {
            self.remove(src, dst);
        }
        removed
    }

    fn remove(&mut self, src: Node, dst: Node) {
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(src);
        let mut dist = 0u16;
        loop {
            match &self.slots[i] {
                None => return,
                Some(slot) => {
                    if slot.src == src && slot.dst == dst {
                        break;
                    }
                    if slot.probe_distance < dist {
                        return;
                    }
                }
            }
            i = (i + 1) & mask;
            dist += 1;
        }
        // Backward-shift deletion keeps probe distances tight.
        self.slots[i] = None;
        self.len -= 1;
        let mut prev = i;
        let mut j = (i + 1) & mask;
        loop {
            match &self.slots[j] {
                Some(slot) if slot.probe_distance > 0 => {
                    let mut moved = self.slots[j].take().unwrap();
                    moved.probe_distance -= 1;
                    probe::value_write(&self.slots[prev]);
                    self.slots[prev] = Some(moved);
                    prev = j;
                    j = (j + 1) & mask;
                }
                _ => return,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HighSlot {
    dst: Node,
    weight: Weight,
}

/// Per-vertex open-addressing edge set for high-degree vertices (the
/// "high-degree table" of Fig. 5).
///
/// # Examples
///
/// ```
/// use saga_graph::hash_tables::OpenEdgeTable;
///
/// let mut t = OpenEdgeTable::new();
/// assert!(t.insert(9, 0.5));
/// assert!(!t.insert(9, 0.5));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OpenEdgeTable {
    slots: Vec<Option<HighSlot>>,
    len: usize,
}

impl Default for OpenEdgeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl OpenEdgeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            slots: vec![None; INITIAL_CAPACITY],
            len: 0,
        }
    }

    /// Creates a table pre-filled from a flushed low-degree cluster.
    pub fn from_edges(edges: &[(Node, Weight)]) -> Self {
        let mut table = Self::new();
        for &(dst, weight) in edges {
            table.insert(dst, weight);
        }
        table
    }

    /// Number of stored edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table stores no edges.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ideal_slot(&self, dst: Node) -> usize {
        (mix64(hash_node(dst)) as usize) & (self.slots.len() - 1)
    }

    /// Whether edge to `dst` is present.
    pub fn contains(&self, dst: Node) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(dst);
        loop {
            probe::value_read(&self.slots[i]);
            match &self.slots[i] {
                None => return false,
                Some(slot) if slot.dst == dst => return true,
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts an edge to `dst` if absent. Returns `true` when inserted.
    pub fn insert(&mut self, dst: Node, weight: Weight) -> bool {
        if (self.len + 1) * MAX_LOAD_DEN > self.slots.len() * MAX_LOAD_NUM {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(dst);
        loop {
            probe::value_read(&self.slots[i]);
            match &mut self.slots[i] {
                slot @ None => {
                    probe::value_write(slot);
                    *slot = Some(HighSlot { dst, weight });
                    self.len += 1;
                    return true;
                }
                Some(slot) if slot.dst == dst => return false,
                Some(_) => {
                    i = (i + 1) & mask;
                    probe::instructions(1);
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(INITIAL_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert(slot.dst, slot.weight);
        }
    }

    /// Visits every stored edge.
    pub fn for_each(&self, f: &mut dyn FnMut(Node, Weight)) {
        probe::slice_read(&self.slots);
        for slot in self.slots.iter().flatten() {
            f(slot.dst, slot.weight);
        }
    }

    /// Removes the edge to `dst` if present. Returns `true` when removed.
    ///
    /// Uses the standard linear-probing deletion: after emptying the slot,
    /// later entries in the probe run are re-inserted if the hole broke
    /// their reachability from their ideal slot.
    pub fn remove(&mut self, dst: Node) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = self.ideal_slot(dst);
        loop {
            match &self.slots[i] {
                None => return false,
                Some(slot) if slot.dst == dst => break,
                Some(_) => i = (i + 1) & mask,
            }
        }
        self.slots[i] = None;
        self.len -= 1;
        // Re-place the remainder of the probe run.
        let mut j = (i + 1) & mask;
        while let Some(slot) = self.slots[j].take() {
            self.len -= 1;
            self.insert(slot.dst, slot.weight);
            j = (j + 1) & mask;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robin_hood_insert_find_roundtrip() {
        let mut t = RobinHoodEdgeTable::new();
        for dst in 0..10u32 {
            assert!(t.insert(5, dst, dst as Weight));
        }
        assert_eq!(t.len(), 10);
        for dst in 0..10u32 {
            assert_eq!(t.find(5, dst), Some(dst as Weight));
        }
        assert_eq!(t.find(5, 99), None);
        assert_eq!(t.find(6, 0), None);
    }

    #[test]
    fn robin_hood_rejects_duplicates() {
        let mut t = RobinHoodEdgeTable::new();
        assert!(t.insert(1, 2, 1.0));
        assert!(!t.insert(1, 2, 5.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(1, 2), Some(1.0));
    }

    #[test]
    fn robin_hood_grows_past_initial_capacity() {
        let mut t = RobinHoodEdgeTable::new();
        for i in 0..1000u32 {
            assert!(t.insert(i % 50, i, 1.0));
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(t.find(i % 50, i), Some(1.0));
        }
    }

    #[test]
    fn cluster_traversal_finds_exactly_own_edges() {
        let mut t = RobinHoodEdgeTable::new();
        // Interleave edges of many sources to force mixed clusters.
        for src in 0..20u32 {
            for dst in 0..8u32 {
                t.insert(src, 1000 + dst, (src * 8 + dst) as Weight);
            }
        }
        for src in 0..20u32 {
            let mut ns = t.neighbors_of(src);
            ns.sort_by_key(|&(n, _)| n);
            assert_eq!(ns.len(), 8, "src {src}");
            for (k, &(n, w)) in ns.iter().enumerate() {
                assert_eq!(n, 1000 + k as Node);
                assert_eq!(w, (src * 8 + k as Node) as Weight);
            }
        }
    }

    #[test]
    fn remove_vertex_flushes_the_cluster() {
        let mut t = RobinHoodEdgeTable::new();
        for src in [3u32, 4, 5] {
            for dst in 0..6u32 {
                t.insert(src, dst, 1.0);
            }
        }
        let removed = t.remove_vertex(4);
        assert_eq!(removed.len(), 6);
        assert_eq!(t.len(), 12);
        assert!(t.neighbors_of(4).is_empty());
        // Other vertices' edges survive the backward-shift deletions.
        assert_eq!(t.neighbors_of(3).len(), 6);
        assert_eq!(t.neighbors_of(5).len(), 6);
        // Reinsertion works after removal.
        assert!(t.insert(4, 0, 2.0));
        assert_eq!(t.find(4, 0), Some(2.0));
    }

    #[test]
    fn open_table_roundtrip_and_growth() {
        let mut t = OpenEdgeTable::new();
        for dst in 0..500u32 {
            assert!(t.insert(dst, dst as Weight));
        }
        assert!(!t.insert(123, 0.0));
        assert_eq!(t.len(), 500);
        for dst in 0..500u32 {
            assert!(t.contains(dst));
        }
        assert!(!t.contains(1000));
        let mut collected: Vec<(Node, Weight)> = Vec::new();
        t.for_each(&mut |n, w| collected.push((n, w)));
        collected.sort_by_key(|&(n, _)| n);
        assert_eq!(collected.len(), 500);
        assert!(collected.iter().enumerate().all(|(i, &(n, w))| {
            n == i as Node && w == i as Weight
        }));
    }

    #[test]
    fn open_table_remove_preserves_probe_runs() {
        let mut t = OpenEdgeTable::new();
        for dst in 0..300u32 {
            t.insert(dst, dst as Weight);
        }
        // Remove every third entry, then verify the rest are all findable.
        for dst in (0..300u32).step_by(3) {
            assert!(t.remove(dst), "remove {dst}");
            assert!(!t.remove(dst), "double remove {dst}");
        }
        assert_eq!(t.len(), 200);
        for dst in 0..300u32 {
            assert_eq!(t.contains(dst), dst % 3 != 0, "contains {dst}");
        }
        // Reinsertion after removal works.
        assert!(t.insert(0, 9.0));
        assert!(t.contains(0));
    }

    #[test]
    fn capacity_stays_power_of_two_across_growth() {
        // Both probe loops wrap with `& (capacity - 1)`, which is only a
        // valid modulus while the slot count is a power of two. Drive both
        // tables through several doublings and check the invariant at every
        // step.
        let mut low = RobinHoodEdgeTable::new();
        assert!(low.slots.len().is_power_of_two());
        for i in 0..2048u32 {
            low.insert(i % 97, i, 1.0);
            assert!(
                low.slots.len().is_power_of_two(),
                "low-degree capacity {} after {} inserts",
                low.slots.len(),
                i + 1
            );
        }
        assert!(low.slots.len() > INITIAL_CAPACITY);

        let mut high = OpenEdgeTable::new();
        assert!(high.slots.len().is_power_of_two());
        for i in 0..2048u32 {
            high.insert(i, 1.0);
            assert!(
                high.slots.len().is_power_of_two(),
                "high-degree capacity {} after {} inserts",
                high.slots.len(),
                i + 1
            );
        }
        assert!(high.slots.len() > INITIAL_CAPACITY);
    }

    #[test]
    fn open_table_from_edges() {
        let t = OpenEdgeTable::from_edges(&[(1, 1.0), (2, 2.0), (1, 9.0)]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(1));
        assert!(t.contains(2));
    }
}
