//! Reference graph for differential testing.
//!
//! [`GraphOracle`] is a deliberately slow, deliberately simple adjacency
//! model (sorted maps, sequential updates) that implements the same
//! ingest-uniquely semantics as the four production data structures. The
//! test suites (unit, property-based, and integration) stream the same
//! batches into an oracle and a [`DynamicGraph`] and require identical
//! topology.

use crate::{DeleteStats, DynamicGraph, Edge, Node, UpdateStats, Weight};
use std::collections::BTreeMap;

/// A sequential reference adjacency structure.
///
/// # Examples
///
/// ```
/// use saga_graph::oracle::GraphOracle;
/// use saga_graph::Edge;
///
/// let mut oracle = GraphOracle::new(4, true);
/// oracle.insert_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 1, 2.0)]);
/// assert_eq!(oracle.num_edges(), 1);
/// assert_eq!(oracle.out_neighbors(0), vec![(1, 1.0)]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphOracle {
    capacity: usize,
    directed: bool,
    out: Vec<BTreeMap<Node, Weight>>,
    inn: Vec<BTreeMap<Node, Weight>>,
    edges: usize,
}

impl GraphOracle {
    /// Creates an empty oracle over vertex ids `0..capacity`.
    pub fn new(capacity: usize, directed: bool) -> Self {
        Self {
            capacity,
            directed,
            out: vec![BTreeMap::new(); capacity],
            inn: vec![BTreeMap::new(); capacity],
            edges: 0,
        }
    }

    /// Ingests a batch with the same uniqueness semantics as the production
    /// structures: first occurrence of an edge wins, later ones are
    /// duplicates; undirected edges are mirrored and counted once.
    pub fn insert_batch(&mut self, batch: &[Edge]) {
        let _ = self.insert_batch_stats(batch);
    }

    /// [`GraphOracle::insert_batch`] reporting the same per-batch tallies a
    /// production structure's `update_batch` returns: edges newly inserted
    /// vs. occurrences skipped as duplicates. Differential harnesses use
    /// this as the expected value for every [`UpdateStats`] a driver emits.
    pub fn insert_batch_stats(&mut self, batch: &[Edge]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        for &Edge { src, dst, weight } in batch {
            let inserted = if self.directed {
                if let std::collections::btree_map::Entry::Vacant(e) =
                    self.out[src as usize].entry(dst)
                {
                    e.insert(weight);
                    self.inn[dst as usize].insert(src, weight);
                    true
                } else {
                    false
                }
            } else {
                let vacant = match self.out[src as usize].entry(dst) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(weight);
                        true
                    }
                    std::collections::btree_map::Entry::Occupied(_) => false,
                };
                if vacant {
                    self.out[dst as usize].insert(src, weight);
                }
                vacant
            };
            if inserted {
                self.edges += 1;
                stats.inserted += 1;
            } else {
                stats.duplicates += 1;
            }
        }
        stats
    }

    /// Applies one driver batch — inserts first, then deletes — exactly as
    /// `StreamDriver` does, returning both phases' expected tallies.
    pub fn apply_batch(&mut self, inserts: &[Edge], deletes: &[Edge]) -> (UpdateStats, DeleteStats) {
        let ins = self.insert_batch_stats(inserts);
        let del = self.delete_batch(deletes);
        (ins, del)
    }

    /// The current logical edge set, as `(src, dst, weight)` triples sorted
    /// by `(src, dst)` — one row per stored direction for directed graphs,
    /// one per unordered pair for undirected ones (the `src <= dst`
    /// orientation). Suitable for [`crate::csr::Csr::from_edges`].
    pub fn edge_list(&self) -> Vec<(Node, Node, Weight)> {
        let mut out = Vec::with_capacity(self.edges);
        for v in 0..self.capacity as Node {
            for (&n, &w) in &self.out[v as usize] {
                if self.directed || v <= n {
                    out.push((v, n, w));
                }
            }
        }
        out
    }

    /// Deletes a batch with the same semantics as [`DeletableGraph`]:
    /// present edges are removed (both directions for undirected graphs)
    /// and counted in [`DeleteStats::removed`]; absent ones — including
    /// repeats of an edge already removed earlier in the same batch — are
    /// counted in [`DeleteStats::missing`].
    ///
    /// [`DeletableGraph`]: crate::DeletableGraph
    pub fn delete_batch(&mut self, batch: &[Edge]) -> DeleteStats {
        let mut stats = DeleteStats::default();
        for &Edge { src, dst, .. } in batch {
            let removed = if self.directed {
                if self.out[src as usize].remove(&dst).is_some() {
                    self.inn[dst as usize].remove(&src);
                    true
                } else {
                    false
                }
            } else if self.out[src as usize].remove(&dst).is_some() {
                if src != dst {
                    self.out[dst as usize].remove(&src);
                }
                true
            } else {
                false
            };
            if removed {
                self.edges -= 1;
                stats.removed += 1;
            } else {
                stats.missing += 1;
            }
        }
        stats
    }

    /// Number of logical edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Number of vertices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Out-neighbors of `v`, sorted by id.
    pub fn out_neighbors(&self, v: Node) -> Vec<(Node, Weight)> {
        self.out[v as usize].iter().map(|(&n, &w)| (n, w)).collect()
    }

    /// In-neighbors of `v`, sorted by id.
    pub fn in_neighbors(&self, v: Node) -> Vec<(Node, Weight)> {
        if self.directed {
            self.inn[v as usize].iter().map(|(&n, &w)| (n, w)).collect()
        } else {
            self.out_neighbors(v)
        }
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: Node) -> usize {
        self.out[v as usize].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: Node) -> usize {
        if self.directed {
            self.inn[v as usize].len()
        } else {
            self.out_degree(v)
        }
    }

    /// Asserts that `graph` stores exactly the same topology.
    ///
    /// Weights are compared only when `check_weights` is set: when a batch
    /// carries the same edge twice with different weights, which concurrent
    /// insert wins is timing-dependent, so weight equality is only
    /// meaningful for streams with deterministic per-edge weights (the
    /// generators in `saga-stream` guarantee this).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first divergence.
    pub fn assert_matches(&self, graph: &dyn DynamicGraph, check_weights: bool) {
        if let Some(diff) = self.diff(graph, check_weights) {
            panic!("{diff}");
        }
    }

    /// Non-panicking topology comparison: returns a description of the
    /// first divergence between `graph` and this oracle, or `None` when the
    /// topologies agree. The differential fuzzer uses this so a divergence
    /// becomes a shrinkable test failure rather than an immediate panic.
    pub fn diff(&self, graph: &dyn DynamicGraph, check_weights: bool) -> Option<String> {
        let kind = graph.kind();
        if graph.capacity() != self.capacity {
            return Some(format!(
                "capacity mismatch on {kind:?}: graph {} vs oracle {}",
                graph.capacity(),
                self.capacity
            ));
        }
        if graph.num_edges() != self.edges {
            return Some(format!(
                "edge count mismatch on {kind:?}: graph {} vs oracle {}",
                graph.num_edges(),
                self.edges
            ));
        }
        for v in 0..self.capacity as Node {
            let mut got_out = graph.out_neighbors(v);
            got_out.sort_by_key(|&(n, _)| n);
            let want_out = self.out_neighbors(v);
            if let Some(d) = compare_lists(kind, v, "out", &got_out, &want_out, check_weights) {
                return Some(d);
            }
            let mut got_in = graph.in_neighbors(v);
            got_in.sort_by_key(|&(n, _)| n);
            let want_in = self.in_neighbors(v);
            if let Some(d) = compare_lists(kind, v, "in", &got_in, &want_in, check_weights) {
                return Some(d);
            }
            if graph.out_degree(v) != want_out.len() {
                return Some(format!(
                    "out_degree({v}) mismatch on {kind:?}: graph {} vs oracle {}",
                    graph.out_degree(v),
                    want_out.len()
                ));
            }
            if graph.in_degree(v) != want_in.len() {
                return Some(format!(
                    "in_degree({v}) mismatch on {kind:?}: graph {} vs oracle {}",
                    graph.in_degree(v),
                    want_in.len()
                ));
            }
        }
        None
    }
}

fn compare_lists(
    kind: crate::DataStructureKind,
    v: Node,
    dir: &str,
    got: &[(Node, Weight)],
    want: &[(Node, Weight)],
    check_weights: bool,
) -> Option<String> {
    let got_ids: Vec<Node> = got.iter().map(|&(n, _)| n).collect();
    let want_ids: Vec<Node> = want.iter().map(|&(n, _)| n).collect();
    if got_ids != want_ids {
        return Some(format!(
            "{dir}-neighbors of {v} mismatch on {kind:?}: graph {got_ids:?} vs oracle {want_ids:?}"
        ));
    }
    if check_weights {
        for (&(n, gw), &(_, ww)) in got.iter().zip(want.iter()) {
            if gw != ww {
                return Some(format!(
                    "weight of {dir}-edge ({v}, {n}) mismatch on {kind:?}: graph {gw} vs oracle {ww}"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, DataStructureKind};
    use saga_utils::parallel::ThreadPool;

    #[test]
    fn oracle_dedups_directed() {
        let mut o = GraphOracle::new(3, true);
        o.insert_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 1, 2.0), Edge::new(1, 0, 3.0)]);
        assert_eq!(o.num_edges(), 2);
        assert_eq!(o.out_neighbors(0), vec![(1, 1.0)]);
        assert_eq!(o.in_neighbors(0), vec![(1, 3.0)]);
    }

    #[test]
    fn oracle_mirrors_undirected() {
        let mut o = GraphOracle::new(3, false);
        o.insert_batch(&[Edge::new(0, 2, 1.0), Edge::new(2, 0, 9.0)]);
        assert_eq!(o.num_edges(), 1);
        assert_eq!(o.out_neighbors(0), vec![(2, 1.0)]);
        assert_eq!(o.out_neighbors(2), vec![(0, 1.0)]);
        assert_eq!(o.in_degree(0), 1);
    }

    #[test]
    fn oracle_delete_stats_count_removed_and_missing() {
        let mut o = GraphOracle::new(4, true);
        o.insert_batch(&[Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)]);
        // One present edge deleted twice in the batch: removed once,
        // missing once; one never-present edge: missing.
        let stats = o.delete_batch(&[
            Edge::new(0, 1, 1.0),
            Edge::new(0, 1, 1.0),
            Edge::new(3, 0, 1.0),
        ]);
        assert_eq!((stats.removed, stats.missing), (1, 2));
        assert_eq!(o.num_edges(), 1);
        // Directed graphs do not accept reversed endpoints.
        let stats = o.delete_batch(&[Edge::new(2, 1, 2.0)]);
        assert_eq!((stats.removed, stats.missing), (0, 1));
    }

    #[test]
    fn oracle_undirected_delete_accepts_either_orientation() {
        let mut o = GraphOracle::new(3, false);
        o.insert_batch(&[Edge::new(0, 2, 1.0)]);
        let stats = o.delete_batch(&[Edge::new(2, 0, 1.0)]);
        assert_eq!((stats.removed, stats.missing), (1, 0));
        assert_eq!(o.num_edges(), 0);
        assert!(o.out_neighbors(0).is_empty());
        assert!(o.out_neighbors(2).is_empty());
    }

    #[test]
    fn all_structures_match_oracle_on_a_small_stream() {
        let pool = ThreadPool::new(4);
        let batches: Vec<Vec<Edge>> = vec![
            vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0), Edge::new(0, 1, 5.0)],
            vec![Edge::new(2, 0, 3.0), Edge::new(3, 3, 4.0), Edge::new(1, 2, 2.0)],
            (0..50).map(|i| Edge::new(4, i % 5, (i % 7) as Weight)).collect(),
        ];
        for directed in [true, false] {
            for kind in DataStructureKind::ALL {
                let g = build_graph(kind, 5, directed, pool.threads());
                let mut oracle = GraphOracle::new(5, directed);
                for batch in &batches {
                    g.update_batch(batch, &pool);
                    oracle.insert_batch(batch);
                }
                // Weights are deterministic per (src, dst) in these batches
                // except the duplicate (0,1); skip weight checks there.
                oracle.assert_matches(g.as_ref(), false);
            }
        }
    }
}
