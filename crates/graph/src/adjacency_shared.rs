//! Adjacency list with shared-style multithreading (**AS**, §III-A1).
//!
//! An array of vectors, one vector per source vertex. A batch is split
//! across all threads (`#pragma omp parallel for` in the paper's code; the
//! pool's static schedule here), and a thread performing an edge update:
//!
//! 1. locks the vector of the source node,
//! 2. scans it for the target edge,
//! 3. inserts the edge if the search was negative.
//!
//! Because the *entire* vector of a source node is locked, there is no
//! intra-node parallelism: concurrent updates to the same high-degree vertex
//! serialize. This is exactly the behaviour behind the paper's finding that
//! AS collapses on heavy-tailed batches (Fig. 6b: 5.6–12.8× slower than DAH
//! on Wiki/Talk) while being the fastest structure on short-tailed ones.

use crate::{DataStructureKind, DynamicGraph, Edge, GraphTopology, Node, UpdateStats, Weight};
use parking_lot::Mutex;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::probe;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One direction of adjacency: a lock-protected neighbor vector per vertex.
pub(crate) struct SharedLists {
    lists: Vec<Mutex<Vec<(Node, Weight)>>>,
    /// Distinguishes out- from in-list locks in the serialization probe.
    lock_tag: u64,
}

impl SharedLists {
    pub(crate) fn new(capacity: usize, lock_tag: u64) -> Self {
        Self {
            lists: (0..capacity).map(|_| Mutex::new(Vec::new())).collect(),
            lock_tag,
        }
    }

    /// Search-then-insert under the source vertex's lock. Returns `true`
    /// when the edge was absent and has been inserted.
    pub(crate) fn insert(&self, src: Node, dst: Node, weight: Weight) -> bool {
        let mut list = self.lists[src as usize].lock();
        // The search scan reads the whole vector (step 2 of §III-A1).
        probe::slice_read(&list);
        // The entire vector is locked for the scan+insert: concurrent
        // updates of the same source serialize (no intra-node parallelism).
        probe::critical(self.lock_tag | src as u64, list.len() as u64 + 1);
        if list.iter().any(|&(n, _)| n == dst) {
            return false;
        }
        list.push((dst, weight));
        probe::write(list.last().unwrap() as *const (Node, Weight), 1);
        true
    }

    /// Search-then-remove under the source vertex's lock. Returns `true`
    /// when the edge was present and has been removed.
    pub(crate) fn remove(&self, src: Node, dst: Node) -> bool {
        let mut list = self.lists[src as usize].lock();
        probe::slice_read(&list);
        probe::critical(self.lock_tag | src as u64, list.len() as u64 + 1);
        if let Some(pos) = list.iter().position(|&(n, _)| n == dst) {
            list.swap_remove(pos);
            true
        } else {
            false
        }
    }

    pub(crate) fn degree(&self, v: Node) -> usize {
        self.lists[v as usize].lock().len()
    }

    pub(crate) fn for_each(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let list = self.lists[v as usize].lock();
        probe::slice_read(&list);
        for &(n, w) in list.iter() {
            f(n, w);
        }
    }
}

/// Adjacency list with shared-style multithreading (AS).
///
/// # Examples
///
/// ```
/// use saga_graph::adjacency_shared::AdjacencyShared;
/// use saga_graph::{DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let g = AdjacencyShared::new(4, true);
/// g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(2, 1, 1.0)], &pool);
/// assert_eq!(g.in_degree(1), 2);
/// ```
pub struct AdjacencyShared {
    out: SharedLists,
    /// In-neighbor copy for directed graphs (footnote 3 of the paper).
    inn: Option<SharedLists>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
}

impl std::fmt::Debug for AdjacencyShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjacencyShared")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl AdjacencyShared {
    /// Creates an empty AS graph over vertex ids `0..capacity`.
    pub fn new(capacity: usize, directed: bool) -> Self {
        Self {
            out: SharedLists::new(capacity, 0),
            inn: directed.then(|| SharedLists::new(capacity, 1 << 40)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
        }
    }
}

/// Ingests one logical edge into an out-structure (+ in-structure or mirror)
/// and reports whether it was new. Shared by AS and Stinger, whose per-edge
/// parallelism is identical.
pub(crate) fn ingest_edge<F>(edge: Edge, directed: bool, mut insert: F) -> bool
where
    F: FnMut(/*into_in:*/ bool, Node, Node, Weight) -> bool,
{
    let Edge { src, dst, weight } = edge;
    if directed {
        let newly = insert(false, src, dst, weight);
        if newly {
            insert(true, dst, src, weight);
        }
        newly
    } else {
        // Undirected: store both directions in the out-structure; count the
        // canonical direction so racing mirror inserts tally once.
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        let newly = insert(false, a, b, weight);
        if newly && a != b {
            insert(false, b, a, weight);
        }
        newly
    }
}

/// Mirror of [`ingest_edge`] for deletions: removes one logical edge from
/// an out-structure (+ in-structure or mirror) and reports whether it was
/// present.
pub(crate) fn remove_edge<F>(edge: Edge, directed: bool, mut remove: F) -> bool
where
    F: FnMut(/*from_in:*/ bool, Node, Node) -> bool,
{
    let Edge { src, dst, .. } = edge;
    if directed {
        let removed = remove(false, src, dst);
        if removed {
            remove(true, dst, src);
        }
        removed
    } else {
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        let removed = remove(false, a, b);
        if removed && a != b {
            remove(false, b, a);
        }
        removed
    }
}

impl GraphTopology for AdjacencyShared {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }



    fn out_degree(&self, v: Node) -> usize {
        self.out.degree(v)
    }

    fn in_degree(&self, v: Node) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        self.out.for_each(v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        match &self.inn {
            Some(inn) => inn.for_each(v, f),
            None => self.out.for_each(v, f),
        }
    }


}

impl DynamicGraph for AdjacencyShared {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let newly = ingest_edge(batch[i], self.directed, |into_in, s, d, w| {
                if into_in {
                    self.inn.as_ref().expect("directed graph has in-lists").insert(s, d, w)
                } else {
                    self.out.insert(s, d, w)
                }
            });
            if newly {
                inserted.fetch_add(1, Ordering::Relaxed);
            }
        });
        let inserted = inserted.load(Ordering::Relaxed);
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::AdjacencyShared
    }
}

impl crate::DeletableGraph for AdjacencyShared {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        let removed = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let was_present = remove_edge(batch[i], self.directed, |from_in, s, d| {
                if from_in {
                    self.inn.as_ref().expect("directed graph has in-lists").remove(s, d)
                } else {
                    self.out.remove(s, d)
                }
            });
            if was_present {
                removed.fetch_add(1, Ordering::Relaxed);
            }
        });
        let removed = removed.load(Ordering::Relaxed);
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeletableGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn delete_removes_both_directions() {
        let g = AdjacencyShared::new(4, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(0, 1, 9.0), Edge::new(3, 3, 1.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.out_neighbors(0), vec![(2, 1.0)]);
        assert!(g.in_neighbors(1).is_empty());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn delete_undirected_mirrors() {
        let g = AdjacencyShared::new(4, false);
        let p = pool();
        g.update_batch(&[Edge::new(2, 1, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(1, 2, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert!(g.out_neighbors(1).is_empty());
        assert!(g.out_neighbors(2).is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn reinsert_after_delete() {
        let g = AdjacencyShared::new(3, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0)], &p);
        g.delete_batch(&[Edge::new(0, 1, 1.0)], &p);
        let stats = g.update_batch(&[Edge::new(0, 1, 2.0)], &p);
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(0), vec![(1, 2.0)]);
    }

    #[test]
    fn directed_insert_maintains_both_directions() {
        let g = AdjacencyShared::new(5, true);
        let stats = g.update_batch(&[Edge::new(1, 3, 2.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(1), vec![(3, 2.0)]);
        assert_eq!(g.in_neighbors(3), vec![(1, 2.0)]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn duplicates_are_ingested_once() {
        let g = AdjacencyShared::new(5, true);
        let batch = vec![Edge::new(0, 1, 1.0); 10];
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.duplicates, 9);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicates_across_batches_are_ingested_once() {
        let g = AdjacencyShared::new(5, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0)], &p);
        let stats = g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)], &p);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_mirrors_and_counts_once() {
        let g = AdjacencyShared::new(5, false);
        let stats = g.update_batch(&[Edge::new(2, 4, 1.5), Edge::new(4, 2, 1.5)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(2), vec![(4, 1.5)]);
        assert_eq!(g.out_neighbors(4), vec![(2, 1.5)]);
        assert_eq!(g.in_neighbors(4), vec![(2, 1.5)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn undirected_self_loop_is_single() {
        let g = AdjacencyShared::new(3, false);
        let stats = g.update_batch(&[Edge::new(1, 1, 1.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(1), vec![(1, 1.0)]);
    }

    #[test]
    fn concurrent_hub_updates_serialize_correctly() {
        let g = AdjacencyShared::new(1001, true);
        // Heavy-tailed batch: everything points at vertex 0's out-list.
        let batch: Vec<Edge> = (1..=1000).map(|i| Edge::new(0, i, 1.0)).collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 1000);
        assert_eq!(g.out_degree(0), 1000);
        let mut ns = g.out_neighbors(0);
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns.len(), 1000);
        assert!(ns.iter().enumerate().all(|(i, &(n, _))| n == i as Node + 1));
    }
}
