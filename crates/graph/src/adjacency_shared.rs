//! Adjacency list with shared-style multithreading (**AS**, §III-A1).
//!
//! An array of vectors, one vector per source vertex. A batch is split
//! across all threads (`#pragma omp parallel for` in the paper's code; the
//! pool's static schedule here), and a thread performing an edge update:
//!
//! 1. locks the vector of the source node,
//! 2. scans it for the target edge,
//! 3. inserts the edge if the search was negative.
//!
//! Because the *entire* vector of a source node is locked, there is no
//! intra-node parallelism: concurrent updates to the same high-degree vertex
//! serialize. This is exactly the behaviour behind the paper's finding that
//! AS collapses on heavy-tailed batches (Fig. 6b: 5.6–12.8× slower than DAH
//! on Wiki/Talk) while being the fastest structure on short-tailed ones.
//!
//! An optional **partitioned ingest** mode
//! ([`AdjacencyShared::with_partitioned_ingest`]) first groups the batch by
//! key vertex with the counting-sort partitioner, then hands each bucket of
//! vertices to exactly one worker, which takes each vertex's lock once per
//! run of consecutive same-source edges. Every lock acquisition is then
//! uncontended, which removes the hub serialization above — it is *not* the
//! paper's AS and is therefore off by default.

use crate::adjacency_chunked::IngestScratch;
use crate::{DataStructureKind, DynamicGraph, Edge, GraphTopology, Node, UpdateStats, Weight};
use saga_utils::sync::{Mutex, MutexGuard};
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// Buckets per pool worker in partitioned-ingest mode: more buckets than
/// workers lets the dynamic bucket cursor balance skewed batches.
pub(crate) const BUCKETS_PER_WORKER: usize = 8;

/// One direction of adjacency: a lock-protected neighbor vector per vertex.
pub(crate) struct SharedLists {
    lists: Vec<Mutex<Vec<(Node, Weight)>>>,
    /// Distinguishes out- from in-list locks in the serialization probe.
    lock_tag: u64,
}

impl SharedLists {
    pub(crate) fn new(capacity: usize, lock_tag: u64) -> Self {
        Self {
            lists: (0..capacity).map(|_| Mutex::new(Vec::new())).collect(),
            lock_tag,
        }
    }

    /// Search-then-insert under the source vertex's lock. Returns `true`
    /// when the edge was absent and has been inserted.
    pub(crate) fn insert(&self, src: Node, dst: Node, weight: Weight) -> bool {
        // The entire vector is locked for the scan+insert (step 2 of
        // §III-A1): concurrent updates of the same source serialize (no
        // intra-node parallelism).
        let mut list = self.lists[src as usize].lock();
        self.insert_locked(src, &mut list, dst, weight)
    }

    /// Search-then-remove under the source vertex's lock. Returns `true`
    /// when the edge was present and has been removed.
    pub(crate) fn remove(&self, src: Node, dst: Node) -> bool {
        let mut list = self.lists[src as usize].lock();
        self.remove_locked(src, &mut list, dst)
    }

    /// Takes vertex `v`'s list lock once; partitioned ingest holds it
    /// across a whole run of same-source edges instead of re-locking per
    /// edge.
    pub(crate) fn lock_list(&self, v: Node) -> MutexGuard<'_, Vec<(Node, Weight)>> {
        self.lists[v as usize].lock()
    }

    /// The search-then-insert body of [`insert`](Self::insert) against an
    /// already-held list guard (same probe records, including the critical
    /// section, so the simulator sees identical per-edge work).
    pub(crate) fn insert_locked(
        &self,
        src: Node,
        list: &mut Vec<(Node, Weight)>,
        dst: Node,
        weight: Weight,
    ) -> bool {
        probe::slice_read(list);
        probe::critical(self.lock_tag | src as u64, list.len() as u64 + 1);
        if list.iter().any(|&(n, _)| n == dst) {
            return false;
        }
        list.push((dst, weight));
        probe::write(list.last().unwrap() as *const (Node, Weight), 1);
        true
    }

    /// The search-then-remove body of [`remove`](Self::remove) against an
    /// already-held list guard.
    pub(crate) fn remove_locked(
        &self,
        src: Node,
        list: &mut Vec<(Node, Weight)>,
        dst: Node,
    ) -> bool {
        probe::slice_read(list);
        probe::critical(self.lock_tag | src as u64, list.len() as u64 + 1);
        if let Some(pos) = list.iter().position(|&(n, _)| n == dst) {
            list.swap_remove(pos);
            true
        } else {
            false
        }
    }

    pub(crate) fn degree(&self, v: Node) -> usize {
        self.lists[v as usize].lock().len()
    }

    pub(crate) fn for_each(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let list = self.lists[v as usize].lock();
        probe::slice_read(&list);
        for &(n, w) in list.iter() {
            f(n, w);
        }
    }
}

/// Adjacency list with shared-style multithreading (AS).
///
/// # Examples
///
/// ```
/// use saga_graph::adjacency_shared::AdjacencyShared;
/// use saga_graph::{DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let g = AdjacencyShared::new(4, true);
/// g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(2, 1, 1.0)], &pool);
/// assert_eq!(g.in_degree(1), 2);
/// ```
pub struct AdjacencyShared {
    out: SharedLists,
    /// In-neighbor copy for directed graphs (footnote 3 of the paper).
    inn: Option<SharedLists>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
    /// Route batches through the counting-sort partitioner instead of the
    /// paper's per-edge `parallel for` (off by default).
    partitioned: bool,
    scratch: Mutex<IngestScratch>,
}

impl std::fmt::Debug for AdjacencyShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjacencyShared")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl AdjacencyShared {
    /// Creates an empty AS graph over vertex ids `0..capacity`.
    pub fn new(capacity: usize, directed: bool) -> Self {
        Self {
            out: SharedLists::new(capacity, 0),
            inn: directed.then(|| SharedLists::new(capacity, 1 << 40)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
            partitioned: false,
            scratch: Mutex::new(IngestScratch::new()),
        }
    }

    /// Enables or disables partitioned ingest (see the module docs): edges
    /// are grouped by key vertex first so each vertex's lock is taken once
    /// per run by a single owner worker, trading the paper's lock
    /// contention for a partitioning pass.
    pub fn with_partitioned_ingest(mut self, enabled: bool) -> Self {
        self.partitioned = enabled;
        self
    }

    fn lists_for(&self, into_in: bool) -> &SharedLists {
        if self.directed && into_in {
            self.inn.as_ref().expect("directed graph has in-lists")
        } else {
            &self.out
        }
    }

    /// Partitioned batch insert: partition both direction passes by key
    /// vertex, then drain buckets via a dynamic cursor. Bucket exclusivity
    /// means no two workers ever touch the same vertex's list, so every
    /// lock acquisition is uncontended.
    fn update_batch_partitioned(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = self.run_partitioned(batch, pool, |lists, run_src, list, edge, into_in| {
            let (s, d, w, counts) = pass_op(edge, self.directed, into_in)?;
            debug_assert_eq!(s, run_src);
            (lists.insert_locked(s, list, d, w) && counts).then_some(())
        });
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn delete_batch_partitioned(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        let removed = self.run_partitioned(batch, pool, |lists, run_src, list, edge, into_in| {
            let (s, d, _w, counts) = pass_op(edge, self.directed, into_in)?;
            debug_assert_eq!(s, run_src);
            (lists.remove_locked(s, list, d) && counts).then_some(())
        });
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }

    /// The shared partitioned drive loop: `apply` performs one
    /// direction-pass of one edge against the held list guard and returns
    /// `Some(())` when the edge counts as a new/removed logical edge.
    fn run_partitioned<F>(&self, batch: &[Edge], pool: &ThreadPool, apply: F) -> usize
    where
        F: Fn(&SharedLists, Node, &mut Vec<(Node, Weight)>, Edge, bool) -> Option<()> + Sync,
    {
        let n_buckets = (pool.threads() * BUCKETS_PER_WORKER).max(1);
        let directed = self.directed;
        let mut scratch = self.scratch.lock();
        let IngestScratch { out, inn } = &mut *scratch;
        out.partition(pool, batch.len(), n_buckets, |i| {
            pass_key(batch[i], directed, false) as usize % n_buckets
        });
        inn.partition(pool, batch.len(), n_buckets, |i| {
            pass_key(batch[i], directed, true) as usize % n_buckets
        });
        let (out, inn) = (&*out, &*inn);
        let counted = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(0);
        pool.run_on_all(|_| {
            let mut local = 0;
            loop {
                // Dynamic bucket grabbing: skewed buckets (a hub's vertex)
                // keep one worker busy while the others drain the rest.
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= n_buckets {
                    break;
                }
                for (part, into_in) in [(out, false), (inn, true)] {
                    let lists = self.lists_for(into_in);
                    let idxs = part.bucket(b);
                    let mut i = 0;
                    while i < idxs.len() {
                        // Lock once per run of consecutive same-key edges
                        // (buckets preserve batch order, so a hub's edges
                        // form one long run).
                        let run_src = pass_key(batch[idxs[i] as usize], directed, into_in);
                        let mut list = lists.lock_list(run_src);
                        while i < idxs.len() {
                            let edge = batch[idxs[i] as usize];
                            if pass_key(edge, directed, into_in) != run_src {
                                break;
                            }
                            if apply(lists, run_src, &mut list, edge, into_in).is_some() {
                                local += 1;
                            }
                            i += 1;
                        }
                    }
                }
            }
            counted.fetch_add(local, Ordering::Relaxed);
        });
        counted.load(Ordering::Relaxed)
    }
}

/// The vertex whose adjacency a direction-pass writes (and therefore the
/// partitioning key): source for the out/canonical pass, destination for
/// the in/mirror pass.
pub(crate) fn pass_key(edge: Edge, directed: bool, into_in: bool) -> Node {
    if directed {
        if into_in {
            edge.dst
        } else {
            edge.src
        }
    } else if into_in {
        edge.src.max(edge.dst)
    } else {
        edge.src.min(edge.dst)
    }
}

/// One direction-pass of a decoupled partitioned ingest as
/// `(src, dst, weight, counts)` — `counts` marks the pass that tallies the
/// logical edge (directed: out; undirected: canonical). Returns `None` for
/// the undirected self-loop mirror, which is the same entry as its
/// canonical pass.
///
/// Unlike [`ingest_edge`], the in/mirror pass here does not depend on the
/// out-pass's result: because every insert/remove is search-first and the
/// two passes are always *attempted* in pairs, unconditional application
/// reaches the same state (a redundant pass finds its entry already
/// present/absent), while allowing the passes to run on different workers.
pub(crate) fn pass_op(
    edge: Edge,
    directed: bool,
    into_in: bool,
) -> Option<(Node, Node, Weight, bool)> {
    let Edge { src, dst, weight } = edge;
    if directed {
        if into_in {
            Some((dst, src, weight, false))
        } else {
            Some((src, dst, weight, true))
        }
    } else {
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        if into_in {
            (a != b).then_some((b, a, weight, false))
        } else {
            Some((a, b, weight, true))
        }
    }
}

/// Ingests one logical edge into an out-structure (+ in-structure or mirror)
/// and reports whether it was new. Shared by AS and Stinger, whose per-edge
/// parallelism is identical.
pub(crate) fn ingest_edge<F>(edge: Edge, directed: bool, mut insert: F) -> bool
where
    F: FnMut(/*into_in:*/ bool, Node, Node, Weight) -> bool,
{
    let Edge { src, dst, weight } = edge;
    if directed {
        let newly = insert(false, src, dst, weight);
        if newly {
            insert(true, dst, src, weight);
        }
        newly
    } else {
        // Undirected: store both directions in the out-structure; count the
        // canonical direction so racing mirror inserts tally once.
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        let newly = insert(false, a, b, weight);
        if newly && a != b {
            insert(false, b, a, weight);
        }
        newly
    }
}

/// Mirror of [`ingest_edge`] for deletions: removes one logical edge from
/// an out-structure (+ in-structure or mirror) and reports whether it was
/// present.
pub(crate) fn remove_edge<F>(edge: Edge, directed: bool, mut remove: F) -> bool
where
    F: FnMut(/*from_in:*/ bool, Node, Node) -> bool,
{
    let Edge { src, dst, .. } = edge;
    if directed {
        let removed = remove(false, src, dst);
        if removed {
            remove(true, dst, src);
        }
        removed
    } else {
        let (a, b) = if src <= dst { (src, dst) } else { (dst, src) };
        let removed = remove(false, a, b);
        if removed && a != b {
            remove(false, b, a);
        }
        removed
    }
}

impl GraphTopology for AdjacencyShared {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }



    fn out_degree(&self, v: Node) -> usize {
        self.out.degree(v)
    }

    fn in_degree(&self, v: Node) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        self.out.for_each(v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        match &self.inn {
            Some(inn) => inn.for_each(v, f),
            None => self.out.for_each(v, f),
        }
    }


}

impl DynamicGraph for AdjacencyShared {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        if self.partitioned {
            return self.update_batch_partitioned(batch, pool);
        }
        let inserted = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let newly = ingest_edge(batch[i], self.directed, |into_in, s, d, w| {
                if into_in {
                    self.inn.as_ref().expect("directed graph has in-lists").insert(s, d, w)
                } else {
                    self.out.insert(s, d, w)
                }
            });
            if newly {
                inserted.fetch_add(1, Ordering::Relaxed);
            }
        });
        let inserted = inserted.load(Ordering::Relaxed);
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::AdjacencyShared
    }
}

impl crate::DeletableGraph for AdjacencyShared {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        if self.partitioned {
            return self.delete_batch_partitioned(batch, pool);
        }
        let removed = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let was_present = remove_edge(batch[i], self.directed, |from_in, s, d| {
                if from_in {
                    self.inn.as_ref().expect("directed graph has in-lists").remove(s, d)
                } else {
                    self.out.remove(s, d)
                }
            });
            if was_present {
                removed.fetch_add(1, Ordering::Relaxed);
            }
        });
        let removed = removed.load(Ordering::Relaxed);
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeletableGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn delete_removes_both_directions() {
        let g = AdjacencyShared::new(4, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(0, 1, 9.0), Edge::new(3, 3, 1.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.out_neighbors(0), vec![(2, 1.0)]);
        assert!(g.in_neighbors(1).is_empty());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn delete_undirected_mirrors() {
        let g = AdjacencyShared::new(4, false);
        let p = pool();
        g.update_batch(&[Edge::new(2, 1, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(1, 2, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert!(g.out_neighbors(1).is_empty());
        assert!(g.out_neighbors(2).is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn reinsert_after_delete() {
        let g = AdjacencyShared::new(3, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0)], &p);
        g.delete_batch(&[Edge::new(0, 1, 1.0)], &p);
        let stats = g.update_batch(&[Edge::new(0, 1, 2.0)], &p);
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(0), vec![(1, 2.0)]);
    }

    #[test]
    fn directed_insert_maintains_both_directions() {
        let g = AdjacencyShared::new(5, true);
        let stats = g.update_batch(&[Edge::new(1, 3, 2.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(1), vec![(3, 2.0)]);
        assert_eq!(g.in_neighbors(3), vec![(1, 2.0)]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn duplicates_are_ingested_once() {
        let g = AdjacencyShared::new(5, true);
        let batch = vec![Edge::new(0, 1, 1.0); 10];
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.duplicates, 9);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicates_across_batches_are_ingested_once() {
        let g = AdjacencyShared::new(5, true);
        let p = pool();
        g.update_batch(&[Edge::new(0, 1, 1.0)], &p);
        let stats = g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)], &p);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_mirrors_and_counts_once() {
        let g = AdjacencyShared::new(5, false);
        let stats = g.update_batch(&[Edge::new(2, 4, 1.5), Edge::new(4, 2, 1.5)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(2), vec![(4, 1.5)]);
        assert_eq!(g.out_neighbors(4), vec![(2, 1.5)]);
        assert_eq!(g.in_neighbors(4), vec![(2, 1.5)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn undirected_self_loop_is_single() {
        let g = AdjacencyShared::new(3, false);
        let stats = g.update_batch(&[Edge::new(1, 1, 1.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(1), vec![(1, 1.0)]);
    }

    #[test]
    fn partitioned_ingest_matches_default_path() {
        let p = pool();
        let batch: Vec<Edge> = (0..600)
            .map(|i| Edge::new(i % 23, (i * 17) % 29, 1.0))
            .collect();
        let deletions: Vec<Edge> = (0..200).map(|i| Edge::new(i % 23, (i * 5) % 29, 0.0)).collect();
        for directed in [true, false] {
            let plain = AdjacencyShared::new(32, directed);
            let part = AdjacencyShared::new(32, directed).with_partitioned_ingest(true);
            let s1 = plain.update_batch(&batch, &p);
            let s2 = part.update_batch(&batch, &p);
            assert_eq!(s1.inserted, s2.inserted, "insert, directed = {directed}");
            let d1 = plain.delete_batch(&deletions, &p);
            let d2 = part.delete_batch(&deletions, &p);
            assert_eq!(d1.removed, d2.removed, "delete, directed = {directed}");
            assert_eq!(plain.num_edges(), part.num_edges());
            for v in 0..32u32 {
                let sorted = |mut ns: Vec<(Node, f32)>| {
                    ns.sort_by_key(|&(n, _)| n);
                    ns.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
                };
                assert_eq!(sorted(plain.out_neighbors(v)), sorted(part.out_neighbors(v)));
                assert_eq!(sorted(plain.in_neighbors(v)), sorted(part.in_neighbors(v)));
            }
        }
    }

    #[test]
    fn partitioned_hub_batch_is_exact() {
        // The scenario partitioned ingest exists for: every edge fights for
        // vertex 0's out-list lock on the default path; here a single owner
        // worker drains the hub's run with one lock acquisition.
        let g = AdjacencyShared::new(2001, true).with_partitioned_ingest(true);
        let batch: Vec<Edge> = (1..=2000)
            .map(|i| Edge::new(0, i, 1.0))
            .chain((1..=2000).map(|i| Edge::new(0, i, 1.0)))
            .collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 2000);
        assert_eq!(stats.duplicates, 2000);
        assert_eq!(g.out_degree(0), 2000);
        for i in 1..=2000u32 {
            assert_eq!(g.in_neighbors(i), vec![(0, 1.0)]);
        }
    }

    #[test]
    fn partitioned_undirected_self_loop_is_single() {
        let g = AdjacencyShared::new(3, false).with_partitioned_ingest(true);
        let p = pool();
        let stats = g.update_batch(&[Edge::new(1, 1, 1.0), Edge::new(2, 1, 1.0)], &p);
        assert_eq!(stats.inserted, 2);
        assert_eq!(g.out_neighbors(1).len(), 2);
        let stats = g.delete_batch(&[Edge::new(1, 1, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(g.out_neighbors(1), vec![(2, 1.0)]);
    }

    #[test]
    fn concurrent_hub_updates_serialize_correctly() {
        let g = AdjacencyShared::new(1001, true);
        // Heavy-tailed batch: everything points at vertex 0's out-list.
        let batch: Vec<Edge> = (1..=1000).map(|i| Edge::new(0, i, 1.0)).collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 1000);
        assert_eq!(g.out_degree(0), 1000);
        let mut ns = g.out_neighbors(0);
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns.len(), 1000);
        assert!(ns.iter().enumerate().all(|(i, &(n, _))| n == i as Node + 1));
    }
}
