//! Degree-Aware Hashing (**DAH**, §III-A4, Fig. 5 of the paper;
//! Iwabuchi et al., IPDPSW 2016).
//!
//! DAH keeps two hash tables per chunk: a Robin Hood table for the edges of
//! *low-degree* vertices and per-vertex open-addressing tables for
//! *high-degree* vertices. Multithreading is chunked exactly like AC: each
//! chunk is single-threaded and lockless during a batch.
//!
//! Hashing gives amortized constant-time edge update, but degree-awareness
//! costs two *meta-operations* the paper highlights:
//!
//! 1. **Degree query** — before placing a new edge, both tables are queried
//!    for the source's degree to decide where it belongs; the same query is
//!    paid again on every traversal (and once more in PageRank, which also
//!    needs the out-degree of each incoming neighbor).
//! 2. **Flush** — when a vertex's low-table degree crosses
//!    [`DEFAULT_FLUSH_THRESHOLD`], all its edges are moved from the
//!    low-degree table into a fresh high-degree table.
//!
//! These meta-operations are why DAH loses to AS on short-tailed graphs
//! (update 2.3–3.2× slower, §V-B) while its lockless hash-based update wins
//! by 5.6–12.8× on heavy-tailed ones.

use crate::adjacency_chunked::{chunked_update, chunked_update_rescan, IngestScratch};
use crate::hash_tables::{OpenEdgeTable, RobinHoodEdgeTable};
use crate::{DataStructureKind, DynamicGraph, Edge, GraphTopology, Node, UpdateStats, Weight};
use saga_utils::sync::Mutex;
use saga_utils::parallel::ThreadPool;
use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// Low-table degree beyond which a vertex's edges are flushed to the
/// high-degree table.
pub const DEFAULT_FLUSH_THRESHOLD: u32 = 16;

/// One single-threaded DAH chunk: shared low-degree Robin Hood table plus
/// per-vertex high-degree tables, with per-vertex degree counters serving
/// the degree-query meta-operation.
struct DahChunk {
    low: RobinHoodEdgeTable,
    high: Vec<Option<OpenEdgeTable>>,
    low_degree: Vec<u32>,
    high_degree: Vec<u32>,
}

impl DahChunk {
    fn new(local_count: usize) -> Self {
        Self {
            low: RobinHoodEdgeTable::new(),
            high: (0..local_count).map(|_| None).collect(),
            low_degree: vec![0; local_count],
            high_degree: vec![0; local_count],
        }
    }

    /// Search-then-insert with degree-aware placement.
    fn insert(&mut self, local: usize, src: Node, dst: Node, weight: Weight, threshold: u32) -> bool {
        // Meta-operation 1: query the degree of each table to decide
        // placement.
        probe::value_read(&self.low_degree[local]);
        probe::value_read(&self.high_degree[local]);
        probe::instructions(2);
        if self.high_degree[local] > 0 {
            let table = self.high[local]
                .as_mut()
                .expect("high degree implies a high table");
            if table.insert(dst, weight) {
                self.high_degree[local] += 1;
                probe::value_write(&self.high_degree[local]);
                return true;
            }
            return false;
        }
        if !self.low.insert(src, dst, weight) {
            return false;
        }
        self.low_degree[local] += 1;
        probe::value_write(&self.low_degree[local]);
        if self.low_degree[local] > threshold {
            // Meta-operation 2: flush the vertex's cluster to a fresh
            // high-degree table.
            let edges = self.low.remove_vertex(src);
            probe::instructions(edges.len() as u64);
            let table = OpenEdgeTable::from_edges(&edges);
            self.high_degree[local] = table.len() as u32;
            self.high[local] = Some(table);
            self.low_degree[local] = 0;
        }
        true
    }

    /// Search-then-remove with degree-aware table selection.
    fn remove(&mut self, local: usize, src: Node, dst: Node) -> bool {
        probe::value_read(&self.low_degree[local]);
        probe::value_read(&self.high_degree[local]);
        probe::instructions(2);
        if self.high_degree[local] > 0 {
            let table = self.high[local]
                .as_mut()
                .expect("high degree implies a high table");
            if table.remove(dst) {
                self.high_degree[local] -= 1;
                if self.high_degree[local] == 0 {
                    self.high[local] = None;
                }
                return true;
            }
            return false;
        }
        if self.low_degree[local] > 0 && self.low.remove_edge(src, dst) {
            self.low_degree[local] -= 1;
            return true;
        }
        false
    }

    fn degree(&self, local: usize) -> usize {
        probe::value_read(&self.low_degree[local]);
        probe::value_read(&self.high_degree[local]);
        (self.low_degree[local] + self.high_degree[local]) as usize
    }

    fn for_each(&self, local: usize, src: Node, f: &mut dyn FnMut(Node, Weight)) {
        // Traversal pays the degree-query meta-operation to locate the
        // right table (§V-B: "expensive neighbor traversal due to
        // degree-query meta-operations").
        probe::value_read(&self.low_degree[local]);
        probe::value_read(&self.high_degree[local]);
        probe::instructions(2);
        if self.high_degree[local] > 0 {
            self.high[local]
                .as_ref()
                .expect("high degree implies a high table")
                .for_each(f);
        } else if self.low_degree[local] > 0 {
            self.low.for_each_neighbor(src, f);
        }
    }
}

/// One direction of DAH adjacency: lockless chunks, one owner thread each.
pub(crate) struct DahLists {
    chunks: Vec<Mutex<DahChunk>>,
    threshold: u32,
}

impl DahLists {
    fn new(capacity: usize, chunks: usize, threshold: u32) -> Self {
        let chunks = chunks.max(1);
        Self {
            chunks: (0..chunks)
                .map(|c| {
                    let local_count = capacity.saturating_sub(c).div_ceil(chunks);
                    Mutex::new(DahChunk::new(local_count))
                })
                .collect(),
            threshold,
        }
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    #[inline]
    fn chunk_of(&self, v: Node) -> usize {
        v as usize % self.chunks.len()
    }

    fn degree(&self, v: Node) -> usize {
        let chunk = self.chunks[self.chunk_of(v)].lock();
        chunk.degree(v as usize / self.chunks.len())
    }

    fn for_each(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let chunk = self.chunks[self.chunk_of(v)].lock();
        chunk.for_each(v as usize / self.chunks.len(), v, f);
    }
}

/// Degree-aware hashing (DAH).
///
/// # Examples
///
/// ```
/// use saga_graph::dah::Dah;
/// use saga_graph::{DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let g = Dah::new(100, true, pool.threads());
/// let batch: Vec<Edge> = (1..50).map(|i| Edge::new(0, i, 1.0)).collect();
/// g.update_batch(&batch, &pool);
/// assert_eq!(g.out_degree(0), 49); // flushed into the high-degree table
/// ```
pub struct Dah {
    out: DahLists,
    inn: Option<DahLists>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
    scratch: Mutex<IngestScratch>,
}

impl std::fmt::Debug for Dah {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dah")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("chunks", &self.out.chunk_count())
            .field("flush_threshold", &self.out.threshold)
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl Dah {
    /// Creates an empty DAH graph with the default flush threshold.
    pub fn new(capacity: usize, directed: bool, chunks: usize) -> Self {
        Self::with_threshold(capacity, directed, chunks, DEFAULT_FLUSH_THRESHOLD)
    }

    /// Creates an empty DAH graph with a custom low→high flush threshold
    /// (used by the threshold ablation bench).
    pub fn with_threshold(capacity: usize, directed: bool, chunks: usize, threshold: u32) -> Self {
        Self {
            out: DahLists::new(capacity, chunks, threshold),
            inn: directed.then(|| DahLists::new(capacity, chunks, threshold)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
            scratch: Mutex::new(IngestScratch::new()),
        }
    }

    /// The chunk that must ingest `edge` in the given direction (same
    /// routing rule as AC).
    fn key_chunk(&self, edge: &Edge, into_in: bool) -> usize {
        if self.directed {
            if into_in {
                self.inn.as_ref().unwrap().chunk_of(edge.dst)
            } else {
                self.out.chunk_of(edge.src)
            }
        } else if into_in {
            self.out.chunk_of(edge.dst)
        } else {
            self.out.chunk_of(edge.src)
        }
    }

    fn ingest_insert(&self, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let chunk_count = self.out.chunk_count();
        let threshold = self.out.threshold;
        let lists = if self.directed && into_in {
            self.inn.as_ref().unwrap()
        } else {
            &self.out
        };
        let (src, dst) = if into_in {
            (edge.dst, edge.src)
        } else {
            (edge.src, edge.dst)
        };
        if !self.directed && into_in && src == dst {
            return false;
        }
        let mut guard = lists.chunks[chunk].lock();
        let newly = guard.insert(
            src as usize / chunk_count,
            src,
            dst,
            edge.weight,
            threshold,
        );
        if self.directed {
            newly && !into_in
        } else {
            newly && src <= dst
        }
    }

    fn ingest_remove(&self, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let chunk_count = self.out.chunk_count();
        let lists = if self.directed && into_in {
            self.inn.as_ref().unwrap()
        } else {
            &self.out
        };
        let (src, dst) = if into_in {
            (edge.dst, edge.src)
        } else {
            (edge.src, edge.dst)
        };
        if !self.directed && into_in && src == dst {
            return false;
        }
        let mut guard = lists.chunks[chunk].lock();
        let removed = guard.remove(src as usize / chunk_count, src, dst);
        if self.directed {
            removed && !into_in
        } else {
            removed && src <= dst
        }
    }

    /// The pre-partitioning `O(batch × chunks)` update path, kept as the
    /// baseline for the `update_ingest` microbenchmark (see
    /// [`crate::adjacency_chunked::AdjacencyChunked::update_batch_rescan`]).
    pub fn update_batch_rescan(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = chunked_update_rescan(
            batch,
            pool,
            self.out.chunk_count(),
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_insert(chunk, edge, into_in),
        );
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }
}

impl GraphTopology for Dah {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }



    fn out_degree(&self, v: Node) -> usize {
        self.out.degree(v)
    }

    fn in_degree(&self, v: Node) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        self.out.for_each(v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        match &self.inn {
            Some(inn) => inn.for_each(v, f),
            None => self.out.for_each(v, f),
        }
    }


}

impl DynamicGraph for Dah {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = chunked_update(
            batch,
            pool,
            self.out.chunk_count(),
            &self.scratch,
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_insert(chunk, edge, into_in),
        );
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::Dah
    }
}

impl crate::DeletableGraph for Dah {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        let removed = chunked_update(
            batch,
            pool,
            self.out.chunk_count(),
            &self.scratch,
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_remove(chunk, edge, into_in),
        );
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeletableGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn delete_from_low_table() {
        let g = Dah::new(10, true, 2);
        let p = pool();
        g.update_batch(&[Edge::new(1, 2, 1.0), Edge::new(1, 3, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(1, 2, 0.0), Edge::new(1, 9, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.out_neighbors(1), vec![(3, 1.0)]);
        assert!(g.in_neighbors(2).is_empty());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn delete_from_high_table() {
        let g = Dah::with_threshold(100, true, 2, 4);
        let p = pool();
        let batch: Vec<Edge> = (1..=20).map(|i| Edge::new(0, i, 1.0)).collect();
        g.update_batch(&batch, &p); // vertex 0 flushed to the high table
        let deletions: Vec<Edge> = (1..=10).map(|i| Edge::new(0, i, 0.0)).collect();
        let stats = g.delete_batch(&deletions, &p);
        assert_eq!(stats.removed, 10);
        assert_eq!(g.out_degree(0), 10);
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns, (11..=20).collect::<Vec<_>>());
    }

    #[test]
    fn emptying_the_high_table_drops_it() {
        let g = Dah::with_threshold(20, true, 1, 2);
        let p = pool();
        let batch: Vec<Edge> = (1..=4).map(|i| Edge::new(0, i, 1.0)).collect();
        g.update_batch(&batch, &p);
        let deletions: Vec<Edge> = (1..=4).map(|i| Edge::new(0, i, 0.0)).collect();
        g.delete_batch(&deletions, &p);
        assert_eq!(g.out_degree(0), 0);
        assert!(g.out_neighbors(0).is_empty());
        // Vertex restarts in the low table.
        g.update_batch(&[Edge::new(0, 7, 2.0)], &p);
        assert_eq!(g.out_neighbors(0), vec![(7, 2.0)]);
    }

    #[test]
    fn undirected_dah_delete_mirrors() {
        let g = Dah::new(10, false, 3);
        let p = pool();
        g.update_batch(&[Edge::new(7, 2, 1.5)], &p);
        let stats = g.delete_batch(&[Edge::new(2, 7, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert!(g.out_neighbors(2).is_empty());
        assert!(g.out_neighbors(7).is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn low_degree_vertices_stay_in_low_table() {
        let g = Dah::new(20, true, 4);
        g.update_batch(&[Edge::new(1, 2, 1.0), Edge::new(1, 3, 2.0)], &pool());
        assert_eq!(g.out_degree(1), 2);
        let mut ns = g.out_neighbors(1);
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns, vec![(2, 1.0), (3, 2.0)]);
        // Still below threshold: no high table.
        let chunk = g.out.chunks[g.out.chunk_of(1)].lock();
        assert!(chunk.high[1 / g.out.chunk_count()].is_none());
    }

    #[test]
    fn crossing_threshold_flushes_to_high_table() {
        let g = Dah::with_threshold(100, true, 2, 8);
        let batch: Vec<Edge> = (1..=20).map(|i| Edge::new(0, i, i as Weight)).collect();
        g.update_batch(&batch, &pool());
        assert_eq!(g.out_degree(0), 20);
        let chunk = g.out.chunks[0].lock();
        assert!(chunk.high[0].is_some(), "vertex 0 should have been flushed");
        assert_eq!(chunk.low_degree[0], 0);
        assert_eq!(chunk.high_degree[0], 20);
        drop(chunk);
        let mut ns = g.out_neighbors(0);
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns.len(), 20);
        for (i, &(n, w)) in ns.iter().enumerate() {
            assert_eq!(n, i as Node + 1);
            assert_eq!(w, (i + 1) as Weight);
        }
    }

    #[test]
    fn duplicates_rejected_in_both_tables() {
        let g = Dah::with_threshold(10, true, 1, 4);
        let p = pool();
        // Low-table duplicates.
        let stats = g.update_batch(&[Edge::new(1, 2, 1.0), Edge::new(1, 2, 9.0)], &p);
        assert_eq!(stats.inserted, 1);
        // Push vertex 1 past the threshold into the high table.
        let batch: Vec<Edge> = (3..=9).map(|i| Edge::new(1, i, 1.0)).collect();
        g.update_batch(&batch, &p);
        assert_eq!(g.out_degree(1), 8);
        // High-table duplicates.
        let stats = g.update_batch(&[Edge::new(1, 2, 5.0)], &p);
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(g.out_degree(1), 8);
    }

    #[test]
    fn undirected_dah_mirrors() {
        let g = Dah::new(10, false, 3);
        let stats = g.update_batch(&[Edge::new(7, 2, 1.5)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(7), vec![(2, 1.5)]);
        assert_eq!(g.out_neighbors(2), vec![(7, 1.5)]);
        assert_eq!(g.in_neighbors(7), vec![(2, 1.5)]);
    }

    #[test]
    fn heavy_hub_lands_in_high_table_with_exact_neighbors() {
        let g = Dah::new(5001, true, 8);
        let batch: Vec<Edge> = (1..=5000).map(|i| Edge::new(0, i, 1.0)).collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 5000);
        assert_eq!(g.out_degree(0), 5000);
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns.len(), 5000);
        assert!(ns.iter().enumerate().all(|(i, &n)| n == i as Node + 1));
    }

    #[test]
    fn in_structure_tracks_high_degree_destinations() {
        let g = Dah::new(2001, true, 4);
        let batch: Vec<Edge> = (1..=2000).map(|i| Edge::new(i, 0, 1.0)).collect();
        g.update_batch(&batch, &pool());
        assert_eq!(g.in_degree(0), 2000);
        assert_eq!(g.out_degree(0), 0);
        let mut ns: Vec<Node> = g.in_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns.len(), 2000);
    }
}
