//! Vertex property arrays.
//!
//! SAGA-Bench keeps vertex property values (depths, labels, ranks, path
//! costs) in arrays *separate from* the topology (footnote 4 of the paper).
//! The compute engines update them from parallel loops, so every array here
//! is atomic-backed; relaxed loads and stores compile to plain moves, and
//! the monotone algorithms additionally get lock-free `fetch_min` /
//! `fetch_max`.

use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Shared array of `f64` values (PageRank scores).
///
/// # Examples
///
/// ```
/// use saga_graph::properties::AtomicF64Array;
///
/// let ranks = AtomicF64Array::filled(3, 0.25);
/// ranks.set(1, 0.5);
/// assert_eq!(ranks.get(1), 0.5);
/// assert_eq!(ranks.get(0), 0.25);
/// ```
#[derive(Debug)]
pub struct AtomicF64Array {
    data: Vec<AtomicU64>,
}

impl AtomicF64Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU64::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        probe::value_read(&self.data[i]);
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f64) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Overwrites every element (property reset of the FS compute model).
    pub fn fill(&self, value: f64) {
        for slot in &self.data {
            slot.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

/// Shared array of `f32` values (SSSP distances, SSWP widths).
#[derive(Debug)]
pub struct AtomicF32Array {
    data: Vec<AtomicU32>,
}

impl AtomicF32Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: f32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        probe::value_read(&self.data[i]);
        f32::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f32) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically lowers element `i` to `value` if `value` is smaller.
    /// Returns `true` when the element changed (delta-stepping relaxation).
    #[inline]
    pub fn fetch_min(&self, i: usize, value: f32) -> bool {
        probe::value_write(&self.data[i]);
        let slot = &self.data[i];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(current) <= value {
                return false;
            }
            match slot.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomically raises element `i` to `value` if `value` is larger.
    /// Returns `true` when the element changed (widest-path relaxation).
    #[inline]
    pub fn fetch_max(&self, i: usize, value: f32) -> bool {
        probe::value_write(&self.data[i]);
        let slot = &self.data[i];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(current) >= value {
                return false;
            }
            match slot.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Overwrites every element.
    pub fn fill(&self, value: f32) {
        for slot in &self.data {
            slot.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

/// Shared array of `u32` values (BFS depths, CC labels, MC values).
#[derive(Debug)]
pub struct AtomicU32Array {
    data: Vec<AtomicU32>,
}

impl AtomicU32Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(value)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        probe::value_read(&self.data[i]);
        self.data[i].load(Ordering::Relaxed)
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: u32) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Atomically lowers element `i`; returns `true` when it changed.
    #[inline]
    pub fn fetch_min(&self, i: usize, value: u32) -> bool {
        probe::value_write(&self.data[i]);
        self.data[i].fetch_min(value, Ordering::AcqRel) > value
    }

    /// Atomically raises element `i`; returns `true` when it changed.
    #[inline]
    pub fn fetch_max(&self, i: usize, value: u32) -> bool {
        probe::value_write(&self.data[i]);
        self.data[i].fetch_max(value, Ordering::AcqRel) < value
    }

    /// Overwrites every element.
    pub fn fill(&self, value: u32) {
        for slot in &self.data {
            slot.store(value, Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_utils::parallel::{Schedule, ThreadPool};

    #[test]
    fn f64_roundtrip_and_fill() {
        let a = AtomicF64Array::filled(4, 1.5);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_vec(), vec![1.5; 4]);
        a.set(2, -3.25);
        assert_eq!(a.get(2), -3.25);
        a.fill(0.0);
        assert_eq!(a.to_vec(), vec![0.0; 4]);
    }

    #[test]
    fn f32_fetch_min_is_monotone() {
        let a = AtomicF32Array::filled(1, f32::INFINITY);
        assert!(a.fetch_min(0, 5.0));
        assert!(!a.fetch_min(0, 7.0));
        assert!(a.fetch_min(0, 2.0));
        assert_eq!(a.get(0), 2.0);
    }

    #[test]
    fn f32_fetch_max_is_monotone() {
        let a = AtomicF32Array::filled(1, 0.0);
        assert!(a.fetch_max(0, 5.0));
        assert!(!a.fetch_max(0, 3.0));
        assert_eq!(a.get(0), 5.0);
    }

    #[test]
    fn u32_fetch_min_max_report_changes() {
        let a = AtomicU32Array::filled(2, 100);
        assert!(a.fetch_min(0, 5));
        assert!(!a.fetch_min(0, 5));
        assert!(a.fetch_max(1, 200));
        assert!(!a.fetch_max(1, 100));
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 200);
    }

    #[test]
    fn concurrent_fetch_min_converges_to_global_min() {
        let pool = ThreadPool::new(4);
        let a = AtomicF32Array::filled(1, f32::INFINITY);
        pool.parallel_for(1..1000, Schedule::Dynamic(17), |i| {
            a.fetch_min(0, i as f32);
        });
        assert_eq!(a.get(0), 1.0);
    }

    #[test]
    fn concurrent_u32_max_converges() {
        let pool = ThreadPool::new(4);
        let a = AtomicU32Array::filled(1, 0);
        pool.parallel_for(0..1000, Schedule::Static, |i| {
            a.fetch_max(0, i as u32);
        });
        assert_eq!(a.get(0), 999);
    }
}
