//! Vertex property arrays.
//!
//! SAGA-Bench keeps vertex property values (depths, labels, ranks, path
//! costs) in arrays *separate from* the topology (footnote 4 of the paper).
//! The compute engines update them from parallel loops, so every array here
//! is atomic-backed; relaxed loads and stores compile to plain moves, and
//! the monotone algorithms additionally get lock-free `fetch_min` /
//! `fetch_max`.

use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Shared array of `f64` values (PageRank scores).
///
/// # Examples
///
/// ```
/// use saga_graph::properties::AtomicF64Array;
///
/// let ranks = AtomicF64Array::filled(3, 0.25);
/// ranks.set(1, 0.5);
/// assert_eq!(ranks.get(1), 0.5);
/// assert_eq!(ranks.get(0), 0.25);
/// ```
#[derive(Debug)]
pub struct AtomicF64Array {
    data: Vec<AtomicU64>,
}

impl AtomicF64Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU64::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        probe::value_read(&self.data[i]);
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f64) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Overwrites every element (property reset of the FS compute model).
    pub fn fill(&self, value: f64) {
        for slot in &self.data {
            slot.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

/// Shared array of `f32` values (SSSP distances, SSWP widths).
#[derive(Debug)]
pub struct AtomicF32Array {
    data: Vec<AtomicU32>,
}

impl AtomicF32Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: f32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(value.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        probe::value_read(&self.data[i]);
        f32::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: f32) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically lowers element `i` to `value` if `value` is smaller.
    /// Returns `true` when the element changed (delta-stepping relaxation).
    #[inline]
    pub fn fetch_min(&self, i: usize, value: f32) -> bool {
        probe::value_write(&self.data[i]);
        let slot = &self.data[i];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(current) <= value {
                return false;
            }
            match slot.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomically raises element `i` to `value` if `value` is larger.
    /// Returns `true` when the element changed (widest-path relaxation).
    #[inline]
    pub fn fetch_max(&self, i: usize, value: f32) -> bool {
        probe::value_write(&self.data[i]);
        let slot = &self.data[i];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            if f32::from_bits(current) >= value {
                return false;
            }
            match slot.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Overwrites every element.
    pub fn fill(&self, value: f32) {
        for slot in &self.data {
            slot.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

/// Shared array of `u32` values (BFS depths, CC labels, MC values).
#[derive(Debug)]
pub struct AtomicU32Array {
    data: Vec<AtomicU32>,
}

impl AtomicU32Array {
    /// Creates an array of `len` copies of `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(value)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        probe::value_read(&self.data[i]);
        self.data[i].load(Ordering::Relaxed)
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&self, i: usize, value: u32) {
        probe::value_write(&self.data[i]);
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Atomically lowers element `i`; returns `true` when it changed.
    #[inline]
    pub fn fetch_min(&self, i: usize, value: u32) -> bool {
        probe::value_write(&self.data[i]);
        self.data[i].fetch_min(value, Ordering::AcqRel) > value
    }

    /// Atomically raises element `i`; returns `true` when it changed.
    #[inline]
    pub fn fetch_max(&self, i: usize, value: u32) -> bool {
        probe::value_write(&self.data[i]);
        self.data[i].fetch_max(value, Ordering::AcqRel) < value
    }

    /// Overwrites every element.
    pub fn fill(&self, value: u32) {
        for slot in &self.data {
            slot.store(value, Ordering::Relaxed);
        }
    }

    /// Copies all values out.
    pub fn to_vec(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Hints that element `i` will be read soon (no-op when out of bounds).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        saga_utils::prefetch::prefetch_index(&self.data, i);
    }
}

/// A shard's slice of a partitioned vertex property array, used by the
/// BSP execution layer (`saga-bsp`).
///
/// The atomic arrays above exist because the serial engines let every
/// worker write any vertex. The sharded engine's whole point is that it
/// does not: shard `s` owns the contiguous global range `[base, base+len)`
/// and is the only writer of those properties, so the storage is plain
/// (non-atomic) values — no cross-socket false sharing, and checkpoint
/// snapshot/restore is a `memcpy`. Accessors take **global** vertex ids
/// and translate internally, so algorithm code reads the same either way.
///
/// Accesses report through [`saga_utils::probe`] like the atomic arrays,
/// so the `saga-perf` memory model sees sharded property traffic too.
///
/// # Examples
///
/// ```
/// use saga_graph::properties::ShardValues;
///
/// let mut s = ShardValues::filled(10, 5, 0u32); // global vertices 10..15
/// s.set(12, 7);
/// assert_eq!(s.get(12), 7);
/// assert_eq!(s.as_slice(), &[0, 0, 7, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardValues<V> {
    base: usize,
    data: Vec<V>,
}

impl<V: Copy> ShardValues<V> {
    /// A shard covering global vertices `[base, base + len)`, all `init`.
    pub fn filled(base: usize, len: usize, init: V) -> Self {
        Self {
            base,
            data: vec![init; len],
        }
    }

    /// A shard covering `[base, base + data.len())` with explicit initial
    /// values (global id `base + i` gets `data[i]`).
    pub fn from_vec(base: usize, data: Vec<V>) -> Self {
        Self { base, data }
    }

    /// First global vertex id owned by this shard.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of vertices owned.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard owns no vertices.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads the property of global vertex `v` (must be owned here).
    #[inline]
    pub fn get(&self, v: usize) -> V {
        let slot = &self.data[v - self.base];
        probe::value_read(slot);
        *slot
    }

    /// Writes the property of global vertex `v` (must be owned here).
    #[inline]
    pub fn set(&mut self, v: usize, value: V) {
        let slot = &mut self.data[v - self.base];
        probe::value_write(slot);
        *slot = value;
    }

    /// The owned values, shard-local order (global id `base + i` at `i`) —
    /// what the checkpoint store snapshots.
    pub fn as_slice(&self) -> &[V] {
        &self.data
    }

    /// Restores the shard from a checkpoint snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.len() != self.len()`.
    pub fn restore(&mut self, snapshot: &[V]) {
        assert_eq!(snapshot.len(), self.data.len(), "checkpoint shape mismatch");
        self.data.copy_from_slice(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_utils::parallel::{Schedule, ThreadPool};

    #[test]
    fn shard_values_translate_global_ids_and_restore() {
        let mut s = ShardValues::filled(4, 3, f32::INFINITY);
        assert_eq!(s.base(), 4);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        s.set(5, 2.5);
        assert_eq!(s.get(5), 2.5);
        assert_eq!(s.as_slice(), &[f32::INFINITY, 2.5, f32::INFINITY]);
        let snapshot = s.as_slice().to_vec();
        s.set(4, 0.0);
        s.set(6, 1.0);
        s.restore(&snapshot);
        assert_eq!(s.as_slice(), &[f32::INFINITY, 2.5, f32::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shard_restore_rejects_wrong_length() {
        let mut s = ShardValues::filled(0, 2, 0u32);
        s.restore(&[1, 2, 3]);
    }

    #[test]
    fn f64_roundtrip_and_fill() {
        let a = AtomicF64Array::filled(4, 1.5);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_vec(), vec![1.5; 4]);
        a.set(2, -3.25);
        assert_eq!(a.get(2), -3.25);
        a.fill(0.0);
        assert_eq!(a.to_vec(), vec![0.0; 4]);
    }

    #[test]
    fn f32_fetch_min_is_monotone() {
        let a = AtomicF32Array::filled(1, f32::INFINITY);
        assert!(a.fetch_min(0, 5.0));
        assert!(!a.fetch_min(0, 7.0));
        assert!(a.fetch_min(0, 2.0));
        assert_eq!(a.get(0), 2.0);
    }

    #[test]
    fn f32_fetch_max_is_monotone() {
        let a = AtomicF32Array::filled(1, 0.0);
        assert!(a.fetch_max(0, 5.0));
        assert!(!a.fetch_max(0, 3.0));
        assert_eq!(a.get(0), 5.0);
    }

    #[test]
    fn u32_fetch_min_max_report_changes() {
        let a = AtomicU32Array::filled(2, 100);
        assert!(a.fetch_min(0, 5));
        assert!(!a.fetch_min(0, 5));
        assert!(a.fetch_max(1, 200));
        assert!(!a.fetch_max(1, 100));
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 200);
    }

    #[test]
    fn concurrent_fetch_min_converges_to_global_min() {
        let pool = ThreadPool::new(4);
        let a = AtomicF32Array::filled(1, f32::INFINITY);
        pool.parallel_for(1..1000, Schedule::Dynamic(17), |i| {
            a.fetch_min(0, i as f32);
        });
        assert_eq!(a.get(0), 1.0);
    }

    #[test]
    fn concurrent_u32_max_converges() {
        let pool = ThreadPool::new(4);
        let a = AtomicU32Array::filled(1, 0);
        pool.parallel_for(0..1000, Schedule::Static, |i| {
            a.fetch_max(0, i as u32);
        });
        assert_eq!(a.get(0), 999);
    }
}
