//! Adjacency list with chunked-style multithreading (**AC**, §III-A2).
//!
//! The adjacency list is partitioned into chunks, each chunk storing the
//! neighbor vectors of a subset of source vertices (`v` belongs to chunk
//! `v % chunks`). A chunk is a *single-threaded* data structure: during a
//! batch update, exactly one worker touches each chunk, so no per-edge lock
//! is taken (the rest of the intra-chunk operation — search then insert in a
//! contiguous vector — is the same as AS, Fig. 3).
//!
//! Routing a batch to its chunks uses a two-pass counting sort
//! ([`saga_utils::partition::Partitioner`]): the batch is partitioned once
//! into per-chunk buckets of edge indices (`O(batch)` key evaluations,
//! exactly one per edge per direction), then worker `w` drains the buckets
//! of the chunks it owns (`c % threads == w`) in batch order. The naive
//! alternative — every chunk owner rescanning the whole batch and skipping
//! foreign edges — costs `O(batch × chunks)` key evaluations and is kept as
//! [`AdjacencyChunked::update_batch_rescan`] for benchmarking.
//!
//! Multithreading comes only from having multiple chunks. This trades the
//! lock contention of AS for workload imbalance: a heavy-tailed batch fills
//! the hub chunk's bucket while the others stay small, keeping the single
//! worker that owns the hub's chunk busy while the rest idle — the
//! behaviour the paper measures in Fig. 9. Partitioning changes how edges
//! *find* their chunk, not which chunk does the work, so that imbalance is
//! deliberately preserved.

use crate::{DataStructureKind, DynamicGraph, Edge, GraphTopology, Node, UpdateStats, Weight};
use saga_utils::sync::Mutex;
use saga_utils::parallel::ThreadPool;
use saga_utils::partition::Partitioner;
use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// Neighbor vectors for the vertices owned by one chunk, indexed by
/// `v / chunks` (the local index of vertex `v` in chunk `v % chunks`).
pub(crate) struct Chunk {
    lists: Vec<Vec<(Node, Weight)>>,
}

impl Chunk {
    fn insert(&mut self, local: usize, dst: Node, weight: Weight) -> bool {
        let list = &mut self.lists[local];
        probe::slice_read(list);
        if list.iter().any(|&(n, _)| n == dst) {
            return false;
        }
        list.push((dst, weight));
        probe::write(list.last().unwrap() as *const (Node, Weight), 1);
        true
    }

    fn remove(&mut self, local: usize, dst: Node) -> bool {
        let list = &mut self.lists[local];
        probe::slice_read(list);
        if let Some(pos) = list.iter().position(|&(n, _)| n == dst) {
            list.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

/// One direction of chunked adjacency. Chunks are behind uncontended
/// mutexes locked once per (worker, batch) — the chunk-ownership discipline
/// makes per-edge locking unnecessary, which is the "lockless" property the
/// paper ascribes to chunked multithreading.
pub(crate) struct ChunkedLists {
    chunks: Vec<Mutex<Chunk>>,
}

impl ChunkedLists {
    pub(crate) fn new(capacity: usize, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        let chunk_store = (0..chunks)
            .map(|c| {
                // Vertices c, c + chunks, c + 2*chunks, ...
                let local_count = capacity.saturating_sub(c).div_ceil(chunks);
                Mutex::new(Chunk {
                    lists: vec![Vec::new(); local_count],
                })
            })
            .collect();
        Self {
            chunks: chunk_store,
        }
    }

    pub(crate) fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    #[inline]
    pub(crate) fn chunk_of(&self, v: Node) -> usize {
        v as usize % self.chunks.len()
    }

    pub(crate) fn degree(&self, v: Node) -> usize {
        let chunk = self.chunks[self.chunk_of(v)].lock();
        chunk.lists[v as usize / self.chunks.len()].len()
    }

    pub(crate) fn for_each(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let chunk = self.chunks[self.chunk_of(v)].lock();
        let list = &chunk.lists[v as usize / self.chunks.len()];
        probe::slice_read(list);
        for &(n, w) in list.iter() {
            f(n, w);
        }
    }
}

/// Adjacency list with chunked-style multithreading (AC).
///
/// # Examples
///
/// ```
/// use saga_graph::adjacency_chunked::AdjacencyChunked;
/// use saga_graph::{DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let g = AdjacencyChunked::new(100, true, pool.threads());
/// g.update_batch(&[Edge::new(0, 7, 1.0), Edge::new(7, 0, 1.0)], &pool);
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_degree(0), 1);
/// ```
pub struct AdjacencyChunked {
    out: ChunkedLists,
    inn: Option<ChunkedLists>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
    scratch: Mutex<IngestScratch>,
}

impl std::fmt::Debug for AdjacencyChunked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjacencyChunked")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("chunks", &self.out.chunk_count())
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl AdjacencyChunked {
    /// Creates an empty AC graph with the given number of single-threaded
    /// chunks (typically the update thread count).
    pub fn new(capacity: usize, directed: bool, chunks: usize) -> Self {
        Self {
            out: ChunkedLists::new(capacity, chunks),
            inn: directed.then(|| ChunkedLists::new(capacity, chunks)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
            scratch: Mutex::new(IngestScratch::new()),
        }
    }

    /// The chunk that must ingest `edge` in the given direction. For
    /// undirected graphs both the canonical and mirror directions live in
    /// the out-structure, keyed by their own source.
    fn key_chunk(&self, edge: &Edge, into_in: bool) -> usize {
        if self.directed {
            if into_in {
                self.inn.as_ref().unwrap().chunk_of(edge.dst)
            } else {
                self.out.chunk_of(edge.src)
            }
        } else if into_in {
            self.out.chunk_of(edge.dst)
        } else {
            self.out.chunk_of(edge.src)
        }
    }

    fn ingest_insert(&self, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let chunk_count = self.out.chunk_count();
        let lists = if self.directed && into_in {
            self.inn.as_ref().unwrap()
        } else {
            &self.out
        };
        let (src, dst) = if into_in {
            (edge.dst, edge.src)
        } else {
            (edge.src, edge.dst)
        };
        if !self.directed && into_in && src == dst {
            return false; // self-loop mirror is the same entry
        }
        let mut guard = lists.chunks[chunk].lock();
        let newly = guard.insert(src as usize / chunk_count, dst, edge.weight);
        // Count a logical edge exactly once: directed edges count on the
        // out-insert; undirected edges count on whichever pass stored the
        // canonical (small → large) direction.
        if self.directed {
            newly && !into_in
        } else {
            newly && src <= dst
        }
    }

    fn ingest_remove(&self, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let chunk_count = self.out.chunk_count();
        let lists = if self.directed && into_in {
            self.inn.as_ref().unwrap()
        } else {
            &self.out
        };
        let (src, dst) = if into_in {
            (edge.dst, edge.src)
        } else {
            (edge.src, edge.dst)
        };
        if !self.directed && into_in && src == dst {
            return false;
        }
        let mut guard = lists.chunks[chunk].lock();
        let removed = guard.remove(src as usize / chunk_count, dst);
        if self.directed {
            removed && !into_in
        } else {
            removed && src <= dst
        }
    }

    /// The pre-partitioning update path: every chunk owner rescans the full
    /// batch and skips foreign edges, costing `O(batch × chunks)` key
    /// evaluations. Kept (not wired into [`DynamicGraph::update_batch`]) as
    /// the baseline for the `update_ingest` microbenchmark and the key-count
    /// regression test.
    pub fn update_batch_rescan(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = chunked_update_rescan(
            batch,
            pool,
            self.out.chunk_count(),
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_insert(chunk, edge, into_in),
        );
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }
}

/// Reusable partitioning scratch for the chunked update phase: one
/// [`Partitioner`] per direction (out-keys and in-keys of the same batch).
/// Each chunked structure holds one behind a mutex so `update_batch(&self)`
/// reaches steady state with zero per-batch allocation.
pub(crate) struct IngestScratch {
    pub(crate) out: Partitioner,
    pub(crate) inn: Partitioner,
}

impl IngestScratch {
    pub(crate) fn new() -> Self {
        Self {
            out: Partitioner::new(),
            inn: Partitioner::new(),
        }
    }
}

/// Runs a chunk-partitioned update pass shared by AC and DAH, whose
/// multithreading style is identical.
///
/// The batch is first partitioned into per-chunk buckets of edge indices —
/// once per direction, evaluating `key_chunk` exactly twice per edge — then
/// worker `w` drains the buckets of every chunk `c` with
/// `c % threads == w`, ingesting that chunk's out-keyed edges and then its
/// in-keyed edges in batch order. Total work is `O(batch)` key evaluations
/// instead of the rescan loop's `O(batch × chunks)`; chunk ownership (and
/// therefore the paper's imbalance behaviour) is unchanged.
///
/// `ingest` returns whether the call accounts for a new logical edge
/// (directed: the out-insert; undirected: the pass that stored the
/// canonical direction).
pub(crate) fn chunked_update<FKey, FIns>(
    batch: &[Edge],
    pool: &ThreadPool,
    chunk_count: usize,
    scratch: &Mutex<IngestScratch>,
    key_chunk: FKey,
    ingest: FIns,
) -> usize
where
    FKey: Fn(&Edge, /*into_in:*/ bool) -> usize + Sync,
    FIns: Fn(usize, &Edge, /*into_in:*/ bool) -> bool + Sync,
{
    let mut scratch = scratch.lock();
    let IngestScratch { out, inn } = &mut *scratch;
    out.partition(pool, batch.len(), chunk_count, |i| {
        key_chunk(&batch[i], false)
    });
    inn.partition(pool, batch.len(), chunk_count, |i| {
        key_chunk(&batch[i], true)
    });
    let inserted = AtomicUsize::new(0);
    let threads = pool.threads();
    pool.run_on_all(|w| {
        let mut local_inserted = 0;
        let mut chunk = w;
        while chunk < chunk_count {
            // Merge the chunk's two buckets back into global batch order
            // (each bucket is stable, so a two-pointer merge on the edge
            // index suffices; ties apply the out pass first, like the
            // rescan). Order matters: when a batch carries duplicate edges
            // whose mirrors land in different chunks, every chunk must pick
            // the same first-in-batch winner or an undirected graph ends up
            // with asymmetric mirror weights.
            let (ob, ib) = (out.bucket(chunk), inn.bucket(chunk));
            let (mut oi, mut ii) = (0, 0);
            while oi < ob.len() || ii < ib.len() {
                let into_in = match (ob.get(oi), ib.get(ii)) {
                    (Some(o), Some(i)) => o > i,
                    (Some(_), None) => false,
                    _ => true,
                };
                let i = if into_in {
                    ii += 1;
                    ib[ii - 1]
                } else {
                    oi += 1;
                    ob[oi - 1]
                };
                if ingest(chunk, &batch[i as usize], into_in) {
                    local_inserted += 1;
                }
            }
            chunk += threads;
        }
        inserted.fetch_add(local_inserted, Ordering::Relaxed);
    });
    inserted.load(Ordering::Relaxed)
}

/// The legacy rescan update pass: worker `w` handles every chunk `c` with
/// `c % threads == w`, scanning the whole batch per chunk and ingesting the
/// edges whose key vertex it owns. `O(batch × chunks)` key evaluations —
/// kept only as the microbenchmark baseline for [`chunked_update`].
pub(crate) fn chunked_update_rescan<FKey, FIns>(
    batch: &[Edge],
    pool: &ThreadPool,
    chunk_count: usize,
    key_chunk: FKey,
    ingest: FIns,
) -> usize
where
    FKey: Fn(&Edge, /*into_in:*/ bool) -> usize + Sync,
    FIns: Fn(usize, &Edge, /*into_in:*/ bool) -> bool + Sync,
{
    let inserted = AtomicUsize::new(0);
    let threads = pool.threads();
    pool.run_on_all(|w| {
        let mut local_inserted = 0;
        let mut chunk = w;
        while chunk < chunk_count {
            for edge in batch {
                if key_chunk(edge, false) == chunk && ingest(chunk, edge, false) {
                    local_inserted += 1;
                }
                if key_chunk(edge, true) == chunk && ingest(chunk, edge, true) {
                    local_inserted += 1;
                }
            }
            chunk += threads;
        }
        inserted.fetch_add(local_inserted, Ordering::Relaxed);
    });
    inserted.load(Ordering::Relaxed)
}

impl GraphTopology for AdjacencyChunked {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }



    fn out_degree(&self, v: Node) -> usize {
        self.out.degree(v)
    }

    fn in_degree(&self, v: Node) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        self.out.for_each(v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        match &self.inn {
            Some(inn) => inn.for_each(v, f),
            None => self.out.for_each(v, f),
        }
    }


}

impl DynamicGraph for AdjacencyChunked {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = chunked_update(
            batch,
            pool,
            self.out.chunk_count(),
            &self.scratch,
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_insert(chunk, edge, into_in),
        );
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::AdjacencyChunked
    }
}

impl crate::DeletableGraph for AdjacencyChunked {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        // Deletion is chunk-partitioned exactly like insertion: one owner
        // thread per chunk, no per-edge locks.
        let removed = chunked_update(
            batch,
            pool,
            self.out.chunk_count(),
            &self.scratch,
            |edge, into_in| self.key_chunk(edge, into_in),
            |chunk, edge, into_in| self.ingest_remove(chunk, edge, into_in),
        );
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeletableGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn chunked_delete_roundtrip() {
        let g = AdjacencyChunked::new(10, true, 4);
        let p = pool();
        g.update_batch(&[Edge::new(1, 3, 2.0), Edge::new(1, 5, 1.0), Edge::new(5, 1, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(1, 3, 0.0), Edge::new(1, 7, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.out_neighbors(1), vec![(5, 1.0)]);
        assert!(g.in_neighbors(3).is_empty());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn chunked_undirected_delete_mirrors() {
        let g = AdjacencyChunked::new(10, false, 3);
        let p = pool();
        g.update_batch(&[Edge::new(7, 2, 1.0), Edge::new(3, 3, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(2, 7, 0.0), Edge::new(3, 3, 0.0)], &p);
        assert_eq!(stats.removed, 2);
        assert!(g.out_neighbors(2).is_empty());
        assert!(g.out_neighbors(7).is_empty());
        assert!(g.out_neighbors(3).is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn directed_chunked_insert() {
        let g = AdjacencyChunked::new(10, true, 4);
        let stats = g.update_batch(&[Edge::new(1, 3, 2.0), Edge::new(1, 5, 1.0)], &pool());
        assert_eq!(stats.inserted, 2);
        let mut out = g.out_neighbors(1);
        out.sort_by_key(|&(n, _)| n);
        assert_eq!(out, vec![(3, 2.0), (5, 1.0)]);
        assert_eq!(g.in_neighbors(3), vec![(1, 2.0)]);
    }

    #[test]
    fn duplicate_edges_within_batch() {
        let g = AdjacencyChunked::new(10, true, 3);
        let stats = g.update_batch(&[Edge::new(2, 4, 1.0); 5], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.duplicates, 4);
    }

    #[test]
    fn undirected_counts_logical_edges() {
        let g = AdjacencyChunked::new(10, false, 4);
        let stats = g.update_batch(
            &[Edge::new(2, 7, 1.0), Edge::new(7, 2, 1.0), Edge::new(3, 3, 1.0)],
            &pool(),
        );
        assert_eq!(stats.inserted, 2);
        assert_eq!(g.out_neighbors(2), vec![(7, 1.0)]);
        assert_eq!(g.out_neighbors(7), vec![(2, 1.0)]);
        assert_eq!(g.out_neighbors(3), vec![(3, 1.0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn chunk_ownership_partitions_vertices() {
        let lists = ChunkedLists::new(103, 4);
        for v in 0..103u32 {
            assert_eq!(lists.chunk_of(v), v as usize % 4);
        }
    }

    #[test]
    fn more_chunks_than_vertices_is_fine() {
        let g = AdjacencyChunked::new(3, true, 16);
        let stats = g.update_batch(&[Edge::new(0, 2, 1.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn hub_batch_lands_in_one_chunk() {
        let g = AdjacencyChunked::new(101, true, 4);
        let batch: Vec<Edge> = (1..=100).map(|i| Edge::new(0, i, 1.0)).collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 100);
        assert_eq!(g.out_degree(0), 100);
    }

    #[test]
    fn rescan_path_matches_partitioned_path() {
        let p = pool();
        let batch: Vec<Edge> = (0..500)
            .map(|i| Edge::new(i % 37, (i * 13) % 41, 1.0 + (i % 5) as f32))
            .collect();
        for directed in [true, false] {
            let fast = AdjacencyChunked::new(64, directed, 4);
            let slow = AdjacencyChunked::new(64, directed, 4);
            let s1 = fast.update_batch(&batch, &p);
            let s2 = slow.update_batch_rescan(&batch, &p);
            assert_eq!(s1.inserted, s2.inserted, "directed = {directed}");
            assert_eq!(fast.num_edges(), slow.num_edges());
            for v in 0..64u32 {
                let mut a = fast.out_neighbors(v);
                let mut b = slow.out_neighbors(v);
                a.sort_by_key(|&(n, _)| n);
                b.sort_by_key(|&(n, _)| n);
                assert_eq!(
                    a.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
                    b.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
                    "out({v}), directed = {directed}"
                );
            }
        }
    }

    #[test]
    fn partitioned_update_evaluates_each_key_once() {
        // The O(batch) acceptance check: the partitioned path evaluates the
        // chunk key exactly twice per edge (once per direction) no matter
        // how many chunks exist, while the rescan path pays 2 × batch ×
        // chunks evaluations.
        let p = pool();
        let batch: Vec<Edge> = (0..200).map(|i| Edge::new(i % 13, i % 7, 1.0)).collect();
        for chunk_count in [1usize, 4, 16] {
            let scratch = Mutex::new(IngestScratch::new());
            let evals = AtomicUsize::new(0);
            chunked_update(
                &batch,
                &p,
                chunk_count,
                &scratch,
                |edge, into_in| {
                    evals.fetch_add(1, Ordering::Relaxed);
                    (if into_in { edge.dst } else { edge.src }) as usize % chunk_count
                },
                |_, _, _| false,
            );
            assert_eq!(
                evals.load(Ordering::Relaxed),
                2 * batch.len(),
                "partitioned, chunks = {chunk_count}"
            );

            let evals = AtomicUsize::new(0);
            chunked_update_rescan(
                &batch,
                &p,
                chunk_count,
                |edge, into_in| {
                    evals.fetch_add(1, Ordering::Relaxed);
                    (if into_in { edge.dst } else { edge.src }) as usize % chunk_count
                },
                |_, _, _| false,
            );
            assert_eq!(
                evals.load(Ordering::Relaxed),
                2 * batch.len() * chunk_count,
                "rescan, chunks = {chunk_count}"
            );
        }
    }
}
