//! Compressed Sparse Row snapshots.
//!
//! Static graph analytics builds the whole graph once in CSR and never
//! changes it (§II-A, Fig. 2a). Streaming systems cannot afford that on the
//! critical path, but a CSR *snapshot* of a dynamic structure is still
//! useful as (1) the reference substrate the test suite validates the
//! dynamic structures and algorithms against, and (2) the static-baseline
//! layout for comparing traversal costs.

use crate::{GraphTopology, Node, Weight};
use saga_utils::probe;

/// An immutable CSR image of a graph's out- and in-adjacency.
///
/// # Examples
///
/// ```
/// use saga_graph::{build_graph, csr::Csr, DataStructureKind, Edge};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(1);
/// let g = build_graph(DataStructureKind::AdjacencyShared, 3, true, 1);
/// g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 2.0)], &pool);
/// let csr = Csr::from_graph(g.as_ref());
/// assert_eq!(csr.out_neighbors(0).len(), 2);
/// assert_eq!(csr.in_neighbors(1), &[(0, 1.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    num_nodes: usize,
    num_edges: usize,
    directed: bool,
    out_offsets: Vec<usize>,
    out_edges: Vec<(Node, Weight)>,
    in_offsets: Vec<usize>,
    in_edges: Vec<(Node, Weight)>,
}

impl Csr {
    /// Snapshots a dynamic graph. Neighbor lists are sorted by id, making
    /// snapshots of different data structures directly comparable.
    pub fn from_graph(graph: &dyn GraphTopology) -> Self {
        let n = graph.capacity();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_edges = Vec::with_capacity(graph.num_edges());
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_edges = Vec::with_capacity(graph.num_edges());
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..n as Node {
            let mut outs = graph.out_neighbors(v);
            outs.sort_by_key(|&(u, _)| u);
            out_edges.extend_from_slice(&outs);
            out_offsets.push(out_edges.len());
            let mut ins = graph.in_neighbors(v);
            ins.sort_by_key(|&(u, _)| u);
            in_edges.extend_from_slice(&ins);
            in_offsets.push(in_edges.len());
        }
        Self {
            num_nodes: n,
            num_edges: graph.num_edges(),
            directed: graph.is_directed(),
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
        }
    }

    /// Builds a CSR directly from an edge list (unique, directed edges).
    pub fn from_edges(num_nodes: usize, directed: bool, edges: &[(Node, Node, Weight)]) -> Self {
        let mut out: Vec<Vec<(Node, Weight)>> = vec![Vec::new(); num_nodes];
        let mut inn: Vec<Vec<(Node, Weight)>> = vec![Vec::new(); num_nodes];
        let mut logical = 0usize;
        for &(s, d, w) in edges {
            if !out[s as usize].iter().any(|&(n, _)| n == d) {
                out[s as usize].push((d, w));
                inn[d as usize].push((s, w));
                logical += 1;
                if !directed && s != d {
                    out[d as usize].push((s, w));
                    inn[s as usize].push((d, w));
                }
            }
        }
        let mut out_offsets = vec![0usize];
        let mut out_edges = Vec::new();
        let mut in_offsets = vec![0usize];
        let mut in_edges = Vec::new();
        for v in 0..num_nodes {
            out[v].sort_by_key(|&(u, _)| u);
            out_edges.extend_from_slice(&out[v]);
            out_offsets.push(out_edges.len());
            if directed {
                inn[v].sort_by_key(|&(u, _)| u);
                in_edges.extend_from_slice(&inn[v]);
            } else {
                in_edges.extend_from_slice(&out[v]);
            }
            in_offsets.push(in_edges.len());
        }
        Self {
            num_nodes,
            num_edges: logical,
            directed,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of logical edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the snapshot came from a directed graph.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbors of `v`, sorted by id.
    pub fn out_neighbors(&self, v: Node) -> &[(Node, Weight)] {
        let s = self.out_offsets[v as usize];
        let e = self.out_offsets[v as usize + 1];
        let slice = &self.out_edges[s..e];
        probe::slice_read(slice);
        slice
    }

    /// In-neighbors of `v`, sorted by id.
    pub fn in_neighbors(&self, v: Node) -> &[(Node, Weight)] {
        let s = self.in_offsets[v as usize];
        let e = self.in_offsets[v as usize + 1];
        let slice = &self.in_edges[s..e];
        probe::slice_read(slice);
        slice
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: Node) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: Node) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }
}


impl GraphTopology for Csr {
    fn capacity(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_directed(&self) -> bool {
        self.directed
    }

    fn out_degree(&self, v: Node) -> usize {
        Csr::out_degree(self, v)
    }

    fn in_degree(&self, v: Node) -> usize {
        Csr::in_degree(self, v)
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        for &(n, w) in Csr::out_neighbors(self, v) {
            f(n, w);
        }
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        for &(n, w) in Csr::in_neighbors(self, v) {
            f(n, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, DataStructureKind, Edge};
    use saga_utils::parallel::ThreadPool;

    #[test]
    fn snapshot_matches_dynamic_graph() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Dah, 6, true, 2);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(3, 0, 3.0),
                Edge::new(0, 1, 9.0),
            ],
            &pool,
        );
        let csr = Csr::from_graph(g.as_ref());
        assert_eq!(csr.num_nodes(), 6);
        assert_eq!(csr.num_edges(), 3);
        assert!(csr.is_directed());
        assert_eq!(csr.out_neighbors(0), &[(1, 1.0), (2, 2.0)]);
        assert_eq!(csr.in_neighbors(0), &[(3, 3.0)]);
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.in_degree(0), 1);
        assert_eq!(csr.out_degree(5), 0);
    }

    #[test]
    fn from_edges_dedups_and_mirrors_undirected() {
        let csr = Csr::from_edges(4, false, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 5.0)]);
        assert_eq!(csr.num_edges(), 2);
        assert_eq!(csr.out_neighbors(0), &[(1, 1.0)]);
        assert_eq!(csr.out_neighbors(1), &[(0, 1.0)]);
        assert_eq!(csr.in_neighbors(1), &[(0, 1.0)]);
        assert_eq!(csr.out_neighbors(2), &[(2, 5.0)]);
    }

    #[test]
    fn from_edges_directed() {
        let csr = Csr::from_edges(3, true, &[(0, 1, 1.0), (0, 2, 1.0), (0, 1, 2.0)]);
        assert_eq!(csr.num_edges(), 2);
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.in_degree(1), 1);
        assert_eq!(csr.out_degree(1), 0);
    }
}
