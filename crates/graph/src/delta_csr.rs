//! Delta-CSR hybrid structure (**DeltaCSR**): an immutable CSR snapshot
//! plus a small chunked delta overlay, merged on threshold.
//!
//! The four §III-A structures pick one point each on the update-cost /
//! traversal-locality trade-off. Delta-CSR refuses the choice: reads run
//! mostly over a *compacted CSR snapshot* — one contiguous, id-sorted edge
//! array with offset indexing, the layout static frameworks use because it
//! makes neighbor scans sequential and prefetchable — while writes go to a
//! small *delta overlay* (per-chunk add/tombstone lists, same chunked
//! ownership discipline as AC/DAH, so batch ingest stays lock-free within
//! a chunk). When the overlay grows past a threshold proportional to the
//! snapshot size, the structure *compacts*: snapshot and overlay are merged
//! into a fresh CSR image and the overlay resets to empty. Compaction cost
//! is `O(n + edges)`, amortized over the `Θ(threshold)` updates that funded
//! it.
//!
//! Semantics match the other structures exactly (search-before-insert
//! dedup, logical-edge counting, undirected mirroring), so Delta-CSR drops
//! into every driver, compute model, and differential harness unmodified:
//!
//! - an edge is **present** iff it is in the overlay's adds, or in the
//!   snapshot and not tombstoned;
//! - inserting a present edge is a duplicate (no weight update, like AC);
//! - deleting removes a delta add outright, tombstones a live snapshot
//!   edge, and counts missing otherwise.
//!
//! Concurrency: the snapshot sits behind an [`RwLock`] read-locked for the
//! duration of a batch or scan; overlay chunks are independently mutexed.
//! Lock order is always snapshot-then-chunk (compaction takes the write
//! lock first, then drains chunks), so the two-level scheme cannot
//! deadlock.

use crate::adjacency_chunked::{chunked_update, IngestScratch};
use crate::{
    DataStructureKind, DeletableGraph, DeleteStats, DynamicGraph, Edge, GraphTopology, Node,
    UpdateStats, Weight,
};
use saga_utils::sync::{Mutex, RwLock};
use saga_utils::parallel::ThreadPool;
use saga_utils::prefetch::{prefetch_index, PREFETCH_DISTANCE};
use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// Compaction fires when the overlay holds at least this many entries,
/// regardless of snapshot size (keeps tiny graphs compacting at all).
const DEFAULT_THRESHOLD_FLOOR: usize = 256;

/// Compaction also fires once the overlay reaches this fraction of the
/// snapshot's stored entries (¼), bounding scan overhead on large graphs.
const THRESHOLD_SNAPSHOT_DIVISOR: usize = 4;

/// One direction of the immutable CSR image. Neighbor lists are id-sorted,
/// so snapshot membership tests are binary searches and merged scans stay
/// sorted.
#[derive(Default)]
struct SnapshotDir {
    offsets: Vec<usize>,
    edges: Vec<(Node, Weight)>,
}

impl SnapshotDir {
    fn empty(capacity: usize) -> Self {
        Self {
            offsets: vec![0; capacity + 1],
            edges: Vec::new(),
        }
    }

    #[inline]
    fn neighbors(&self, v: Node) -> &[(Node, Weight)] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    #[inline]
    fn contains(&self, v: Node, dst: Node) -> bool {
        self.neighbors(v)
            .binary_search_by_key(&dst, |&(n, _)| n)
            .is_ok()
    }
}

/// Both directions of the snapshot. Undirected graphs store each logical
/// edge twice in `out` (mirror entries) and serve `in_*` from it, exactly
/// like the dynamic structures; directed graphs keep a second image.
struct Snapshot {
    out: SnapshotDir,
    inn: Option<SnapshotDir>,
}

/// Overlay state for the vertices owned by one chunk, indexed by
/// `v / chunks`. `adds` are edges not live in the snapshot; `dels` are
/// tombstones over snapshot entries. The two are disjoint views: an edge
/// re-inserted after deletion keeps its tombstone and gains an add.
struct DeltaChunk {
    adds: Vec<Vec<(Node, Weight)>>,
    dels: Vec<Vec<Node>>,
}

/// One direction of the chunked delta overlay.
struct DeltaDir {
    chunks: Vec<Mutex<DeltaChunk>>,
}

impl DeltaDir {
    fn new(capacity: usize, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        let store = (0..chunks)
            .map(|c| {
                let local_count = capacity.saturating_sub(c).div_ceil(chunks);
                Mutex::new(DeltaChunk {
                    adds: vec![Vec::new(); local_count],
                    dels: vec![Vec::new(); local_count],
                })
            })
            .collect();
        Self { chunks: store }
    }

    #[inline]
    fn chunk_of(&self, v: Node) -> usize {
        v as usize % self.chunks.len()
    }
}

/// Delta-CSR hybrid: CSR snapshot + chunked delta overlay with
/// threshold-triggered compaction.
///
/// # Examples
///
/// ```
/// use saga_graph::delta_csr::DeltaCsr;
/// use saga_graph::{DeletableGraph, DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let g = DeltaCsr::new(10, true, pool.threads());
/// g.update_batch(&[Edge::new(0, 3, 1.0), Edge::new(0, 5, 2.0)], &pool);
/// assert_eq!(g.out_degree(0), 2);
/// g.delete_batch(&[Edge::new(0, 3, 0.0)], &pool);
/// assert_eq!(g.out_neighbors(0), vec![(5, 2.0)]);
/// ```
pub struct DeltaCsr {
    snapshot: RwLock<Snapshot>,
    out: DeltaDir,
    inn: Option<DeltaDir>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
    /// Overlay mutations since the last compaction (adds pushed, adds
    /// retracted, tombstones pushed) — the compaction trigger.
    delta_ops: AtomicUsize,
    /// Stored entries in the current snapshot, mirrored out of the lock so
    /// the trigger check stays lock-free.
    snap_entries: AtomicUsize,
    /// Merges performed over the structure's lifetime (ablation
    /// observability).
    compactions: AtomicUsize,
    threshold_floor: usize,
    scratch: Mutex<IngestScratch>,
}

impl std::fmt::Debug for DeltaCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaCsr")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("edges", &self.num_edges())
            .field("delta_ops", &self.delta_ops.load(Ordering::Relaxed))
            .finish()
    }
}

impl DeltaCsr {
    /// Creates an empty Delta-CSR graph with the given number of
    /// single-threaded overlay chunks (typically the update thread count).
    pub fn new(capacity: usize, directed: bool, chunks: usize) -> Self {
        Self {
            snapshot: RwLock::new(Snapshot {
                out: SnapshotDir::empty(capacity),
                inn: directed.then(|| SnapshotDir::empty(capacity)),
            }),
            out: DeltaDir::new(capacity, chunks),
            inn: directed.then(|| DeltaDir::new(capacity, chunks)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
            delta_ops: AtomicUsize::new(0),
            snap_entries: AtomicUsize::new(0),
            compactions: AtomicUsize::new(0),
            threshold_floor: DEFAULT_THRESHOLD_FLOOR,
            scratch: Mutex::new(IngestScratch::new()),
        }
    }

    /// Overrides the compaction floor (overlay entries that force a merge
    /// regardless of snapshot size) — the knob the compaction-threshold
    /// ablation sweeps. The proportional part (overlay ≥ snapshot / 4)
    /// is unchanged.
    pub fn with_compaction_threshold(mut self, floor: usize) -> Self {
        self.threshold_floor = floor.max(1);
        self
    }

    /// Overlay mutations accumulated since the last compaction (test and
    /// ablation observability).
    pub fn pending_delta_ops(&self) -> usize {
        self.delta_ops.load(Ordering::Acquire)
    }

    /// Snapshot merges performed so far (threshold-triggered and explicit).
    pub fn compactions(&self) -> usize {
        self.compactions.load(Ordering::Acquire)
    }

    /// The chunk that must ingest `edge` in the given direction (same
    /// routing convention as AC/DAH).
    fn key_chunk(&self, edge: &Edge, into_in: bool) -> usize {
        if self.directed {
            if into_in {
                self.inn.as_ref().unwrap().chunk_of(edge.dst)
            } else {
                self.out.chunk_of(edge.src)
            }
        } else if into_in {
            self.out.chunk_of(edge.dst)
        } else {
            self.out.chunk_of(edge.src)
        }
    }

    /// Resolves `(delta direction, snapshot direction, src, dst)` for one
    /// ingest pass, or `None` for the undirected self-loop mirror (which
    /// is the same stored entry as its primary pass).
    fn resolve<'a>(
        &'a self,
        snap: &'a Snapshot,
        edge: &Edge,
        into_in: bool,
    ) -> Option<(&'a DeltaDir, &'a SnapshotDir, Node, Node)> {
        let (delta, dir) = if self.directed && into_in {
            (self.inn.as_ref().unwrap(), snap.inn.as_ref().unwrap())
        } else {
            (&self.out, &snap.out)
        };
        let (src, dst) = if into_in {
            (edge.dst, edge.src)
        } else {
            (edge.src, edge.dst)
        };
        if !self.directed && into_in && src == dst {
            return None; // self-loop mirror is the same entry
        }
        Some((delta, dir, src, dst))
    }

    fn ingest_insert(&self, snap: &Snapshot, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let Some((delta, dir, src, dst)) = self.resolve(snap, edge, into_in) else {
            return false;
        };
        let local = src as usize / delta.chunks.len();
        let mut guard = delta.chunks[chunk].lock();
        let DeltaChunk { adds, dels } = &mut *guard;
        let adds = &mut adds[local];
        probe::slice_read(adds);
        let newly = if adds.iter().any(|&(n, _)| n == dst) {
            false
        } else if dir.contains(src, dst) && !dels[local].contains(&dst) {
            probe::slice_read(dir.neighbors(src));
            false
        } else {
            adds.push((dst, edge.weight));
            probe::write(adds.last().unwrap() as *const (Node, Weight), 1);
            self.delta_ops.fetch_add(1, Ordering::Relaxed);
            true
        };
        if self.directed {
            newly && !into_in
        } else {
            newly && src <= dst
        }
    }

    fn ingest_remove(&self, snap: &Snapshot, chunk: usize, edge: &Edge, into_in: bool) -> bool {
        let Some((delta, dir, src, dst)) = self.resolve(snap, edge, into_in) else {
            return false;
        };
        let local = src as usize / delta.chunks.len();
        let mut guard = delta.chunks[chunk].lock();
        let DeltaChunk { adds, dels } = &mut *guard;
        let adds = &mut adds[local];
        probe::slice_read(adds);
        let removed = if let Some(pos) = adds.iter().position(|&(n, _)| n == dst) {
            adds.swap_remove(pos);
            self.delta_ops.fetch_add(1, Ordering::Relaxed);
            true
        } else if dir.contains(src, dst) && !dels[local].contains(&dst) {
            dels[local].push(dst);
            probe::write(dels[local].last().unwrap() as *const Node, 1);
            self.delta_ops.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        };
        if self.directed {
            removed && !into_in
        } else {
            removed && src <= dst
        }
    }

    fn degree_of(&self, delta: &DeltaDir, dir: &SnapshotDir, v: Node) -> usize {
        let chunk = delta.chunks[delta.chunk_of(v)].lock();
        let local = v as usize / delta.chunks.len();
        dir.neighbors(v).len() + chunk.adds[local].len() - chunk.dels[local].len()
    }

    fn for_each_dir(
        &self,
        delta: &DeltaDir,
        dir: &SnapshotDir,
        v: Node,
        f: &mut dyn FnMut(Node, Weight),
    ) {
        let chunk = delta.chunks[delta.chunk_of(v)].lock();
        let local = v as usize / delta.chunks.len();
        let dels = &chunk.dels[local];
        let slice = dir.neighbors(v);
        probe::slice_read(slice);
        if dels.is_empty() {
            // Hot path: one sequential sweep over the contiguous snapshot
            // slice, hinting the line PREFETCH_DISTANCE entries ahead.
            for i in 0..slice.len() {
                prefetch_index(slice, i + PREFETCH_DISTANCE);
                let (n, w) = slice[i];
                f(n, w);
            }
        } else {
            for i in 0..slice.len() {
                prefetch_index(slice, i + PREFETCH_DISTANCE);
                let (n, w) = slice[i];
                if !dels.contains(&n) {
                    f(n, w);
                }
            }
        }
        let adds = &chunk.adds[local];
        probe::slice_read(adds);
        for &(n, w) in adds.iter() {
            f(n, w);
        }
    }

    /// Merges snapshot and overlay into a fresh CSR image if the overlay
    /// has crossed the compaction threshold.
    fn maybe_compact(&self) {
        let ops = self.delta_ops.load(Ordering::Acquire);
        let threshold = self
            .threshold_floor
            .max(self.snap_entries.load(Ordering::Acquire) / THRESHOLD_SNAPSHOT_DIVISOR);
        if ops >= threshold {
            self.compact();
        }
    }

    /// Unconditional merge: rebuilds both CSR images with tombstones
    /// applied and adds merged in id order, then resets the overlay.
    pub fn compact(&self) {
        let _span = saga_trace::span!("compaction", ops = self.delta_ops.load(Ordering::Relaxed) as u64);
        let mut snap = self.snapshot.write();
        let mut entries = 0usize;
        let out = Self::merge_dir(self.capacity, &snap.out, &self.out, &mut entries);
        let inn = self
            .inn
            .as_ref()
            .map(|delta| Self::merge_dir(self.capacity, snap.inn.as_ref().unwrap(), delta, &mut entries));
        *snap = Snapshot { out, inn };
        self.snap_entries.store(entries, Ordering::Release);
        self.delta_ops.store(0, Ordering::Release);
        self.compactions.fetch_add(1, Ordering::AcqRel);
    }

    /// Rebuilds one direction. Holds every chunk lock of the direction for
    /// the duration (the snapshot write lock already excludes readers and
    /// ingest batches; chunk locks are taken in index order).
    fn merge_dir(
        capacity: usize,
        dir: &SnapshotDir,
        delta: &DeltaDir,
        entries: &mut usize,
    ) -> SnapshotDir {
        let mut guards: Vec<_> = delta.chunks.iter().map(|c| c.lock()).collect();
        let chunk_count = delta.chunks.len();
        let mut offsets = Vec::with_capacity(capacity + 1);
        let mut edges = Vec::with_capacity(dir.edges.len());
        offsets.push(0);
        let mut merged: Vec<(Node, Weight)> = Vec::new();
        for v in 0..capacity {
            let chunk = &mut *guards[v % chunk_count];
            let local = v / chunk_count;
            let DeltaChunk { adds, dels } = chunk;
            let adds = &mut adds[local];
            let dels = &mut dels[local];
            let live = dir.neighbors(v as Node);
            if adds.is_empty() && dels.is_empty() {
                edges.extend_from_slice(live);
            } else {
                dels.sort_unstable();
                merged.clear();
                merged.extend(
                    live.iter()
                        .filter(|&&(n, _)| dels.binary_search(&n).is_err())
                        .copied(),
                );
                merged.extend_from_slice(adds);
                // Snapshot lists stay id-sorted across compactions so
                // membership stays a binary search and snapshots of
                // different structures stay directly comparable.
                merged.sort_unstable_by_key(|&(n, _)| n);
                edges.extend_from_slice(&merged);
                adds.clear();
                dels.clear();
            }
            offsets.push(edges.len());
        }
        *entries += edges.len();
        SnapshotDir { offsets, edges }
    }
}

impl GraphTopology for DeltaCsr {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }

    fn out_degree(&self, v: Node) -> usize {
        let snap = self.snapshot.read();
        self.degree_of(&self.out, &snap.out, v)
    }

    fn in_degree(&self, v: Node) -> usize {
        let snap = self.snapshot.read();
        match (&self.inn, &snap.inn) {
            (Some(delta), Some(dir)) => self.degree_of(delta, dir, v),
            _ => self.degree_of(&self.out, &snap.out, v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let snap = self.snapshot.read();
        self.for_each_dir(&self.out, &snap.out, v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        let snap = self.snapshot.read();
        match (&self.inn, &snap.inn) {
            (Some(delta), Some(dir)) => self.for_each_dir(delta, dir, v, f),
            _ => self.for_each_dir(&self.out, &snap.out, v, f),
        }
    }
}

impl DynamicGraph for DeltaCsr {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = {
            let snap = self.snapshot.read();
            chunked_update(
                batch,
                pool,
                self.out.chunks.len(),
                &self.scratch,
                |edge, into_in| self.key_chunk(edge, into_in),
                |chunk, edge, into_in| self.ingest_insert(&snap, chunk, edge, into_in),
            )
        };
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        self.maybe_compact();
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::DeltaCsr
    }
}

impl DeletableGraph for DeltaCsr {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> DeleteStats {
        let removed = {
            let snap = self.snapshot.read();
            chunked_update(
                batch,
                pool,
                self.out.chunks.len(),
                &self.scratch,
                |edge, into_in| self.key_chunk(edge, into_in),
                |chunk, edge, into_in| self.ingest_remove(&snap, chunk, edge, into_in),
            )
        };
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        self.maybe_compact();
        DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn directed_insert_and_dedup() {
        let g = DeltaCsr::new(10, true, 4);
        let stats = g.update_batch(
            &[Edge::new(1, 3, 2.0), Edge::new(1, 5, 1.0), Edge::new(1, 3, 9.0)],
            &pool(),
        );
        assert_eq!(stats.inserted, 2);
        assert_eq!(stats.duplicates, 1);
        let mut out = g.out_neighbors(1);
        out.sort_by_key(|&(n, _)| n);
        assert_eq!(out, vec![(3, 2.0), (5, 1.0)]);
        assert_eq!(g.in_neighbors(3), vec![(1, 2.0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_counts_logical_edges() {
        let g = DeltaCsr::new(10, false, 4);
        let stats = g.update_batch(
            &[Edge::new(2, 7, 1.0), Edge::new(7, 2, 1.0), Edge::new(3, 3, 1.0)],
            &pool(),
        );
        assert_eq!(stats.inserted, 2);
        assert_eq!(g.out_neighbors(2), vec![(7, 1.0)]);
        assert_eq!(g.out_neighbors(7), vec![(2, 1.0)]);
        assert_eq!(g.out_neighbors(3), vec![(3, 1.0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn delete_spans_overlay_and_snapshot() {
        let p = pool();
        let g = DeltaCsr::new(10, true, 4);
        g.update_batch(&[Edge::new(1, 3, 2.0), Edge::new(1, 5, 1.0)], &p);
        g.compact(); // (1,3) and (1,5) now live in the snapshot
        g.update_batch(&[Edge::new(1, 7, 4.0)], &p); // overlay add
        let stats = g.delete_batch(
            &[Edge::new(1, 3, 0.0), Edge::new(1, 7, 0.0), Edge::new(1, 9, 0.0)],
            &p,
        );
        assert_eq!(stats.removed, 2);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.out_neighbors(1), vec![(5, 1.0)]);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn reinsert_after_delete_through_compaction() {
        let p = pool();
        let g = DeltaCsr::new(10, true, 2);
        g.update_batch(&[Edge::new(0, 1, 1.0)], &p);
        g.compact();
        g.delete_batch(&[Edge::new(0, 1, 0.0)], &p); // tombstone snapshot edge
        assert!(g.out_neighbors(0).is_empty());
        let stats = g.update_batch(&[Edge::new(0, 1, 5.0)], &p); // re-insert
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(0), vec![(1, 5.0)]);
        assert_eq!(g.out_degree(0), 1);
        g.compact();
        assert_eq!(g.out_neighbors(0), vec![(1, 5.0)]);
        assert_eq!(g.in_neighbors(1), vec![(0, 5.0)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn compaction_threshold_fires_automatically() {
        let p = pool();
        let g = DeltaCsr::new(200, true, 2).with_compaction_threshold(16);
        let batch: Vec<Edge> = (0..40).map(|i| Edge::new(i, (i + 1) % 200, 1.0)).collect();
        g.update_batch(&batch, &p);
        // 40 logical edges × 2 directions = 80 overlay entries ≥ 16 ⇒ the
        // batch-end check compacted and the overlay is empty again.
        assert_eq!(g.pending_delta_ops(), 0);
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.num_edges(), 40);
        assert_eq!(g.out_neighbors(0), vec![(1, 1.0)]);
        assert_eq!(g.in_neighbors(40), vec![(39, 1.0)]);
    }

    #[test]
    fn merged_scan_is_id_sorted_after_compaction() {
        let p = pool();
        let g = DeltaCsr::new(50, true, 4);
        g.update_batch(&[Edge::new(1, 30, 1.0), Edge::new(1, 10, 1.0)], &p);
        g.compact();
        g.update_batch(&[Edge::new(1, 20, 1.0), Edge::new(1, 5, 1.0)], &p);
        g.compact();
        assert_eq!(
            g.out_neighbors(1),
            vec![(5, 1.0), (10, 1.0), (20, 1.0), (30, 1.0)]
        );
    }

    #[test]
    fn undirected_self_loop_roundtrip() {
        let p = pool();
        let g = DeltaCsr::new(5, false, 2);
        g.update_batch(&[Edge::new(3, 3, 1.0)], &p);
        assert_eq!(g.out_degree(3), 1);
        g.compact();
        assert_eq!(g.out_neighbors(3), vec![(3, 1.0)]);
        let stats = g.delete_batch(&[Edge::new(3, 3, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert!(g.out_neighbors(3).is_empty());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degrees_mix_snapshot_and_overlay() {
        let p = pool();
        let g = DeltaCsr::new(20, true, 4);
        g.update_batch(&[Edge::new(2, 4, 1.0), Edge::new(2, 6, 1.0)], &p);
        g.compact();
        g.update_batch(&[Edge::new(2, 8, 1.0)], &p);
        g.delete_batch(&[Edge::new(2, 4, 0.0)], &p);
        assert_eq!(g.out_degree(2), 2); // 2 snapshot − 1 tombstone + 1 add
        assert_eq!(g.in_degree(8), 1);
        assert_eq!(g.in_degree(4), 0);
    }
}
