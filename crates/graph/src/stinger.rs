//! Stinger-style shared-memory structure with linked edge blocks
//! (§III-A3, Fig. 4 of the paper; Ediger et al., HPEC 2012).
//!
//! Each vertex owns a header (degree counter) pointing to a linked list of
//! *edge blocks*, each holding a fixed number of edges
//! ([`DEFAULT_BLOCK_SIZE`] = 16, as in the paper). Stinger differs from AS
//! in two ways the paper calls out:
//!
//! 1. **Intra-node parallelism** — locks are per *block*, not per vertex, so
//!    several threads can update edges of the same high-degree vertex
//!    concurrently (hand-over-hand through the block chain).
//! 2. **Two scans per insert** — the first scan searches the chain for the
//!    target edge; if absent, a second scan finds an empty slot. This is the
//!    price of the fine-grained locks and is why Stinger's update is
//!    1.57–1.76× slower than AS on short-tailed graphs (§V-B) while being
//!    ~3.9× faster than AS on heavy-tailed ones.
//!
//! Blocks live in a per-direction **arena** ([`BlockArena`]): a pool of
//! fixed-size segments allocated 64 blocks at a time, addressed by dense
//! `u32` block ids and recycled through a free list when deletions drop
//! empty tail blocks. Compared to one `Arc<Mutex<Block>>` heap allocation
//! per block, the arena keeps block headers contiguous, makes steady-state
//! block allocation malloc-free (pop the free list or bump a cursor into a
//! warm segment), and shrinks a chain link from a pointer to a 4-byte id.
//! Traversal still hops id → segment → block — the pointer-chasing the
//! paper blames for Stinger's compute latency — and the access probe
//! records each hop for the cache simulator.

use crate::adjacency_chunked::IngestScratch;
use crate::adjacency_shared::{ingest_edge, pass_key, pass_op, BUCKETS_PER_WORKER};
use crate::{DataStructureKind, DynamicGraph, Edge, GraphTopology, Node, UpdateStats, Weight};
use saga_utils::sync::{Mutex, RwLock};
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::probe;
use saga_utils::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use saga_utils::sync::Arc;

/// Edges per block, matching the paper's Stinger configuration.
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Blocks allocated per arena segment.
const BLOCKS_PER_SEGMENT: usize = 64;

/// One fixed-capacity edge block.
struct Block {
    edges: Vec<(Node, Weight)>,
}

/// One arena segment: [`BLOCKS_PER_SEGMENT`] block headers in a single
/// contiguous slab, each block's edge storage pre-reserved at the arena's
/// block size so filling a block never reallocates.
struct Segment {
    blocks: Vec<Mutex<Block>>,
}

impl Segment {
    fn new(block_size: usize) -> Self {
        Self {
            blocks: (0..BLOCKS_PER_SEGMENT)
                .map(|_| {
                    Mutex::new(Block {
                        edges: Vec::with_capacity(block_size),
                    })
                })
                .collect(),
        }
    }
}

/// Distinguishes the lock ids the probe reports for different arenas (out
/// vs in lists, multiple graphs in one process).
static ARENA_TAGS: AtomicUsize = AtomicUsize::new(1);

/// Segment-pool allocator for edge blocks.
///
/// Blocks are addressed by dense `u32` ids: `id / BLOCKS_PER_SEGMENT`
/// selects the segment, `id % BLOCKS_PER_SEGMENT` the slot. Allocation
/// pops the free list (blocks recycled by deletion compaction) or bumps a
/// cursor; the segment directory only takes its write lock to append a
/// fresh segment, so steady-state allocation performs no heap allocation
/// at all.
///
/// Safety of recycling is a protocol, not a type: a block id is owned by
/// exactly one vertex chain, every reader of a chain holds that vertex's
/// `op_lock` at least shared, and ids are only released while the deleting
/// thread holds it exclusively — so no traversal can observe a block after
/// it returns to the free list.
struct BlockArena {
    segments: RwLock<Vec<Arc<Segment>>>,
    free: Mutex<Vec<u32>>,
    next: AtomicUsize,
    block_size: usize,
    /// High bits of the probe lock ids this arena reports.
    tag: u64,
}

impl BlockArena {
    fn new(block_size: usize) -> Self {
        Self {
            segments: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            next: AtomicUsize::new(0),
            block_size,
            tag: (ARENA_TAGS.fetch_add(1, Ordering::Relaxed) as u64) << 32,
        }
    }

    /// The probe lock id of block `id` (unique across arenas).
    fn lock_id(&self, id: u32) -> u64 {
        self.tag | id as u64
    }

    /// Runs `f` on block `id`'s mutex. The directory read lock is held only
    /// long enough to pin the segment.
    fn with_block<R>(&self, id: u32, f: impl FnOnce(&Mutex<Block>) -> R) -> R {
        let seg = {
            let dir = self.segments.read();
            Arc::clone(&dir[id as usize / BLOCKS_PER_SEGMENT])
        };
        // The id → segment → block walk is a dependent pointer hop (the
        // pointer-chasing the paper attributes Stinger's compute latency
        // to); the probe records it as a separate access.
        let block = &seg.blocks[id as usize % BLOCKS_PER_SEGMENT];
        probe::value_read(block);
        f(block)
    }

    /// Allocates a block id: recycled if possible, bumped otherwise. The
    /// returned block is empty with `block_size` capacity reserved.
    fn alloc(&self) -> u32 {
        if let Some(id) = self.free.lock().pop() {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        {
            let dir = self.segments.read();
            if id < dir.len() * BLOCKS_PER_SEGMENT {
                return id as u32;
            }
        }
        let mut dir = self.segments.write();
        while dir.len() * BLOCKS_PER_SEGMENT <= id {
            dir.push(Arc::new(Segment::new(self.block_size)));
        }
        id as u32
    }

    /// Returns an emptied block to the free list. Callers must hold the
    /// owning vertex's `op_lock` exclusively (see the type-level contract).
    fn release(&self, id: u32) {
        self.free.lock().push(id);
    }
}

/// Per-vertex header: degree + the block chain.
///
/// The chain is a vector of arena block ids; the vector itself is only
/// locked to append a block (or to snapshot the chain), while per-edge work
/// locks individual blocks — the fine-grained scheme of Fig. 4.
struct VertexEntry {
    degree: AtomicU32,
    chain: Mutex<Vec<u32>>,
    /// Inserters and traversals hold this shared (they stay concurrent —
    /// the intra-node parallelism of Fig. 4); deleters hold it exclusively
    /// so their compaction cannot interleave an insert's two scans, and so
    /// the block ids they recycle cannot be observed by a racing reader.
    /// The no-holes invariant (every block full except the tail) that makes
    /// concurrent duplicate detection sound depends on this too.
    op_lock: RwLock<()>,
}

impl VertexEntry {
    fn new() -> Self {
        Self {
            degree: AtomicU32::new(0),
            chain: Mutex::new(Vec::new()),
            op_lock: RwLock::new(()),
        }
    }
}

/// One direction of Stinger adjacency.
pub(crate) struct StingerLists {
    vertices: Vec<VertexEntry>,
    arena: BlockArena,
    block_size: usize,
}

impl StingerLists {
    pub(crate) fn new(capacity: usize, block_size: usize) -> Self {
        Self {
            vertices: (0..capacity).map(|_| VertexEntry::new()).collect(),
            arena: BlockArena::new(block_size),
            block_size,
        }
    }

    fn snapshot(&self, v: Node) -> Vec<u32> {
        let chain = self.vertices[v as usize].chain.lock();
        probe::slice_read(&chain);
        chain.clone()
    }

    /// Search-then-insert with the paper's two scans.
    pub(crate) fn insert(&self, src: Node, dst: Node, weight: Weight) -> bool {
        let entry = &self.vertices[src as usize];
        let _shared = entry.op_lock.read();
        probe::value_read(&entry.degree);
        let snapshot = self.snapshot(src);

        // Scan 1: search the chain for the target edge. Serialization is
        // per *block* (fine-grained locks give intra-node parallelism), so
        // each block's scan is reported against its own lock id.
        for &id in &snapshot {
            let found = self.arena.with_block(id, |block| {
                let guard = block.lock();
                probe::slice_read(&guard.edges);
                probe::critical(self.arena.lock_id(id), guard.edges.len() as u64 + 1);
                guard.edges.iter().any(|&(n, _)| n == dst)
            });
            if found {
                return false;
            }
        }

        // Scan 2: walk the chain again looking for an empty slot,
        // re-checking for the edge under each block's lock so a racing
        // insert of the same edge is caught.
        for &id in &snapshot {
            let outcome = self.arena.with_block(id, |block| {
                let mut guard = block.lock();
                probe::slice_read(&guard.edges);
                probe::critical(self.arena.lock_id(id), guard.edges.len() as u64 + 1);
                if guard.edges.iter().any(|&(n, _)| n == dst) {
                    return Some(false);
                }
                if guard.edges.len() < self.block_size {
                    guard.edges.push((dst, weight));
                    probe::write(guard.edges.last().unwrap() as *const (Node, Weight), 1);
                    entry.degree.fetch_add(1, Ordering::AcqRel);
                    return Some(true);
                }
                None
            });
            if let Some(inserted) = outcome {
                return inserted;
            }
        }

        // Every snapshotted block is full: append. The chain lock
        // serializes appenders; blocks added since the snapshot are checked
        // first (they may hold the edge or an empty slot).
        let mut chain = entry.chain.lock();
        for &id in chain.iter().skip(snapshot.len()) {
            let outcome = self.arena.with_block(id, |block| {
                let mut guard = block.lock();
                probe::slice_read(&guard.edges);
                if guard.edges.iter().any(|&(n, _)| n == dst) {
                    return Some(false);
                }
                if guard.edges.len() < self.block_size {
                    guard.edges.push((dst, weight));
                    probe::write(guard.edges.last().unwrap() as *const (Node, Weight), 1);
                    entry.degree.fetch_add(1, Ordering::AcqRel);
                    return Some(true);
                }
                None
            });
            if let Some(inserted) = outcome {
                return inserted;
            }
        }
        let id = self.arena.alloc();
        self.arena.with_block(id, |block| {
            let mut guard = block.lock();
            guard.edges.push((dst, weight));
            probe::write(guard.edges.last().unwrap() as *const (Node, Weight), 1);
        });
        chain.push(id);
        entry.degree.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Removes edge `(src, dst)` if present, compacting the chain so every
    /// block except the tail stays full (the invariant concurrent inserts
    /// rely on). Emptied tail blocks go back to the arena free list.
    /// Returns `true` when removed.
    pub(crate) fn remove(&self, src: Node, dst: Node) -> bool {
        let entry = &self.vertices[src as usize];
        // Exclusive per-vertex access: no insert or traversal can
        // interleave, and nobody else can hold ids we recycle.
        let _exclusive = entry.op_lock.write();
        let chain_snapshot = entry.chain.lock().clone();
        let mut found: Option<usize> = None;
        for (bi, &id) in chain_snapshot.iter().enumerate() {
            let hit = self.arena.with_block(id, |block| {
                let mut guard = block.lock();
                probe::slice_read(&guard.edges);
                if let Some(pos) = guard.edges.iter().position(|&(n, _)| n == dst) {
                    guard.edges.swap_remove(pos);
                    true
                } else {
                    false
                }
            });
            if hit {
                found = Some(bi);
                break;
            }
        }
        let Some(bi) = found else {
            return false;
        };
        entry.degree.fetch_sub(1, Ordering::AcqRel);
        // Compaction: refill the hole from the tail block, then drop empty
        // tail blocks back into the arena.
        let mut chain = entry.chain.lock();
        while let Some(&last) = chain.last() {
            if last == chain_snapshot[bi] {
                break; // the hole is in the tail: already the partial block
            }
            let moved = self.arena.with_block(last, |block| block.lock().edges.pop());
            match moved {
                Some(edge) => {
                    self.arena
                        .with_block(chain_snapshot[bi], |block| block.lock().edges.push(edge));
                    break;
                }
                None => {
                    chain.pop(); // stale empty tail
                    self.arena.release(last);
                }
            }
        }
        while let Some(&last) = chain.last() {
            let empty = self.arena.with_block(last, |block| block.lock().edges.is_empty());
            if empty {
                chain.pop();
                self.arena.release(last);
            } else {
                break;
            }
        }
        true
    }

    pub(crate) fn degree(&self, v: Node) -> usize {
        self.vertices[v as usize].degree.load(Ordering::Acquire) as usize
    }

    pub(crate) fn for_each(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        // Shared op-lock: a concurrent deleter of this vertex could
        // otherwise recycle a snapshotted block id under the scan.
        let _shared = self.vertices[v as usize].op_lock.read();
        let snapshot = self.snapshot(v);
        for &id in &snapshot {
            self.arena.with_block(id, |block| {
                let guard = block.lock();
                probe::slice_read(&guard.edges);
                for &(n, w) in guard.edges.iter() {
                    f(n, w);
                }
            });
        }
    }
}

/// Stinger: shared-memory linked edge blocks with fine-grained locks.
///
/// # Examples
///
/// ```
/// use saga_graph::stinger::Stinger;
/// use saga_graph::{DynamicGraph, Edge, GraphTopology};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let g = Stinger::new(8, true);
/// g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)], &pool);
/// assert_eq!(g.out_degree(0), 2);
/// ```
pub struct Stinger {
    out: StingerLists,
    inn: Option<StingerLists>,
    capacity: usize,
    directed: bool,
    edges: AtomicUsize,
    /// Route batches through the counting-sort partitioner instead of the
    /// paper's per-edge `parallel for` (off by default).
    partitioned: bool,
    scratch: Mutex<IngestScratch>,
}

impl std::fmt::Debug for Stinger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stinger")
            .field("capacity", &self.capacity)
            .field("directed", &self.directed)
            .field("block_size", &self.out.block_size)
            .field("edges", &self.num_edges())
            .finish()
    }
}

impl Stinger {
    /// Creates an empty Stinger graph with the paper's 16-edge blocks.
    pub fn new(capacity: usize, directed: bool) -> Self {
        Self::with_block_size(capacity, directed, DEFAULT_BLOCK_SIZE)
    }

    /// Creates an empty Stinger graph with a custom block size (used by the
    /// block-size ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_block_size(capacity: usize, directed: bool, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            out: StingerLists::new(capacity, block_size),
            inn: directed.then(|| StingerLists::new(capacity, block_size)),
            capacity,
            directed,
            edges: AtomicUsize::new(0),
            partitioned: false,
            scratch: Mutex::new(IngestScratch::new()),
        }
    }

    /// Enables or disables partitioned ingest: the batch is grouped by key
    /// vertex first, and each bucket of vertices is drained by exactly one
    /// worker, so no two workers ever contend on the same vertex's block
    /// chain. Not the paper's Stinger (which leans on its fine-grained
    /// block locks under contention) and therefore off by default.
    pub fn with_partitioned_ingest(mut self, enabled: bool) -> Self {
        self.partitioned = enabled;
        self
    }

    fn lists_for(&self, into_in: bool) -> &StingerLists {
        if self.directed && into_in {
            self.inn.as_ref().expect("directed graph has in-lists")
        } else {
            &self.out
        }
    }

    /// The shared partitioned drive loop (same bucket-exclusive scheme as
    /// AS partitioned ingest, minus run-grouping: Stinger's per-block locks
    /// are re-taken per edge, but never contended here).
    fn run_partitioned<F>(&self, batch: &[Edge], pool: &ThreadPool, apply: F) -> usize
    where
        F: Fn(&StingerLists, Edge, bool) -> Option<()> + Sync,
    {
        let n_buckets = (pool.threads() * BUCKETS_PER_WORKER).max(1);
        let directed = self.directed;
        let mut scratch = self.scratch.lock();
        let IngestScratch { out, inn } = &mut *scratch;
        out.partition(pool, batch.len(), n_buckets, |i| {
            pass_key(batch[i], directed, false) as usize % n_buckets
        });
        inn.partition(pool, batch.len(), n_buckets, |i| {
            pass_key(batch[i], directed, true) as usize % n_buckets
        });
        let (out, inn) = (&*out, &*inn);
        let counted = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(0);
        pool.run_on_all(|_| {
            let mut local = 0;
            loop {
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= n_buckets {
                    break;
                }
                for (part, into_in) in [(out, false), (inn, true)] {
                    let lists = self.lists_for(into_in);
                    for &i in part.bucket(b) {
                        if apply(lists, batch[i as usize], into_in).is_some() {
                            local += 1;
                        }
                    }
                }
            }
            counted.fetch_add(local, Ordering::Relaxed);
        });
        counted.load(Ordering::Relaxed)
    }

    fn update_batch_partitioned(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        let inserted = self.run_partitioned(batch, pool, |lists, edge, into_in| {
            let (s, d, w, counts) = pass_op(edge, self.directed, into_in)?;
            (lists.insert(s, d, w) && counts).then_some(())
        });
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn delete_batch_partitioned(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        let removed = self.run_partitioned(batch, pool, |lists, edge, into_in| {
            let (s, d, _w, counts) = pass_op(edge, self.directed, into_in)?;
            (lists.remove(s, d) && counts).then_some(())
        });
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

impl GraphTopology for Stinger {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_edges(&self) -> usize {
        self.edges.load(Ordering::Acquire)
    }

    fn is_directed(&self) -> bool {
        self.directed
    }



    fn out_degree(&self, v: Node) -> usize {
        self.out.degree(v)
    }

    fn in_degree(&self, v: Node) -> usize {
        match &self.inn {
            Some(inn) => inn.degree(v),
            None => self.out.degree(v),
        }
    }

    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        self.out.for_each(v, f);
    }

    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight)) {
        match &self.inn {
            Some(inn) => inn.for_each(v, f),
            None => self.out.for_each(v, f),
        }
    }


}

impl DynamicGraph for Stinger {
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats {
        if self.partitioned {
            return self.update_batch_partitioned(batch, pool);
        }
        let inserted = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let newly = ingest_edge(batch[i], self.directed, |into_in, s, d, w| {
                if into_in {
                    self.inn.as_ref().expect("directed graph has in-lists").insert(s, d, w)
                } else {
                    self.out.insert(s, d, w)
                }
            });
            if newly {
                inserted.fetch_add(1, Ordering::Relaxed);
            }
        });
        let inserted = inserted.load(Ordering::Relaxed);
        self.edges.fetch_add(inserted, Ordering::AcqRel);
        UpdateStats {
            inserted,
            duplicates: batch.len() - inserted,
        }
    }

    fn kind(&self) -> DataStructureKind {
        DataStructureKind::Stinger
    }
}

impl crate::DeletableGraph for Stinger {
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> crate::DeleteStats {
        if self.partitioned {
            return self.delete_batch_partitioned(batch, pool);
        }
        let removed = AtomicUsize::new(0);
        pool.parallel_for(0..batch.len(), Schedule::Static, |i| {
            let was_present = ingest_edge_removal(batch[i], self.directed, |from_in, s, d| {
                if from_in {
                    self.inn.as_ref().expect("directed graph has in-lists").remove(s, d)
                } else {
                    self.out.remove(s, d)
                }
            });
            if was_present {
                removed.fetch_add(1, Ordering::Relaxed);
            }
        });
        let removed = removed.load(Ordering::Relaxed);
        self.edges.fetch_sub(removed, Ordering::AcqRel);
        crate::DeleteStats {
            removed,
            missing: batch.len() - removed,
        }
    }
}

use crate::adjacency_shared::remove_edge as ingest_edge_removal;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeletableGraph;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn delete_compacts_blocks() {
        let g = Stinger::with_block_size(10, true, 4);
        let p = pool();
        let batch: Vec<Edge> = (1..=9).map(|i| Edge::new(0, i, i as Weight)).collect();
        g.update_batch(&batch, &p); // 9 edges -> 3 blocks (4+4+1)
        // Delete an edge from the first block: the tail edge must refill it.
        let stats = g.delete_batch(&[Edge::new(0, 1, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(g.out_degree(0), 8);
        let chain_len = g.out.vertices[0].chain.lock().len();
        assert_eq!(chain_len, 2, "empty tail block dropped after compaction");
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns, (2..=9).collect::<Vec<_>>());
        // Blocks 0..n-1 must be full (the concurrent-insert invariant).
        let chain = g.out.vertices[0].chain.lock().clone();
        for &id in &chain[..chain.len() - 1] {
            g.out.arena.with_block(id, |block| {
                assert_eq!(block.lock().edges.len(), 4);
            });
        }
    }

    #[test]
    fn arena_recycles_blocks_through_churn() {
        let g = Stinger::with_block_size(4, true, 2);
        let p = pool();
        let batch: Vec<Edge> = (0..30).map(|i| Edge::new(0, 1 + (i % 3), 1.0)).collect();
        g.update_batch(&batch, &p); // 3 edges -> 2 blocks
        let high_water = g.out.arena.next.load(Ordering::Relaxed);
        // Delete and reinsert the same edges repeatedly: freed tail blocks
        // must be reused, never newly bumped.
        for _ in 0..5 {
            g.delete_batch(&batch[..3], &p);
            assert_eq!(g.out_degree(0), 0);
            g.update_batch(&batch[..3], &p);
            assert_eq!(g.out_degree(0), 3);
        }
        assert_eq!(
            g.out.arena.next.load(Ordering::Relaxed),
            high_water,
            "churn must be served from the free list"
        );
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn delete_missing_and_double_delete() {
        let g = Stinger::new(5, true);
        let p = pool();
        g.update_batch(&[Edge::new(1, 2, 1.0)], &p);
        let stats = g.delete_batch(&[Edge::new(1, 2, 0.0), Edge::new(1, 2, 0.0)], &p);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.missing, 1);
        assert_eq!(g.num_edges(), 0);
        assert!(g.out_neighbors(1).is_empty());
    }

    #[test]
    fn concurrent_inserts_after_deletions_stay_unique() {
        let g = Stinger::new(401, true);
        let p = pool();
        let batch: Vec<Edge> = (1..=400).map(|i| Edge::new(0, i, 1.0)).collect();
        g.update_batch(&batch, &p);
        let deletions: Vec<Edge> = (1..=200).map(|i| Edge::new(0, i * 2, 0.0)).collect();
        g.delete_batch(&deletions, &p);
        assert_eq!(g.out_degree(0), 200);
        // Reinsert everything concurrently, twice over.
        let mut reinsert = batch.clone();
        reinsert.extend(batch.iter().copied());
        let stats = g.update_batch(&reinsert, &p);
        assert_eq!(stats.inserted, 200);
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), 400, "no duplicates after delete/reinsert churn");
        assert_eq!(g.out_degree(0), 400);
    }

    #[test]
    fn inserts_span_multiple_blocks() {
        let g = Stinger::new(50, true);
        let batch: Vec<Edge> = (1..=40).map(|i| Edge::new(0, i, i as Weight)).collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 40);
        assert_eq!(g.out_degree(0), 40);
        // 40 edges at block size 16 -> 3 blocks.
        let chain_len = g.out.vertices[0].chain.lock().len();
        assert_eq!(chain_len, 3);
        let mut ns = g.out_neighbors(0);
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns.len(), 40);
        for (i, &(n, w)) in ns.iter().enumerate() {
            assert_eq!(n, i as Node + 1);
            assert_eq!(w, (i + 1) as Weight);
        }
    }

    #[test]
    fn duplicates_within_and_across_batches() {
        let g = Stinger::new(10, true);
        let p = pool();
        let stats = g.update_batch(&[Edge::new(1, 2, 1.0); 8], &p);
        assert_eq!(stats.inserted, 1);
        let stats = g.update_batch(&[Edge::new(1, 2, 1.0)], &p);
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn concurrent_hub_inserts_are_exact() {
        // Exercises the intra-node path: many threads target vertex 0.
        let g = Stinger::new(2001, true);
        let batch: Vec<Edge> = (1..=2000)
            .map(|i| Edge::new(0, i, 1.0))
            .chain((1..=2000).map(|i| Edge::new(0, i, 1.0)))
            .collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 2000);
        assert_eq!(stats.duplicates, 2000);
        assert_eq!(g.out_degree(0), 2000);
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), 2000, "no duplicate edges may survive the race");
    }

    #[test]
    fn partitioned_ingest_matches_default_path() {
        let p = pool();
        let batch: Vec<Edge> = (0..600)
            .map(|i| Edge::new(i % 19, (i * 11) % 31, 1.0))
            .collect();
        let deletions: Vec<Edge> = (0..150).map(|i| Edge::new(i % 19, (i * 3) % 31, 0.0)).collect();
        for directed in [true, false] {
            let plain = Stinger::new(32, directed);
            let part = Stinger::new(32, directed).with_partitioned_ingest(true);
            let s1 = plain.update_batch(&batch, &p);
            let s2 = part.update_batch(&batch, &p);
            assert_eq!(s1.inserted, s2.inserted, "insert, directed = {directed}");
            let d1 = plain.delete_batch(&deletions, &p);
            let d2 = part.delete_batch(&deletions, &p);
            assert_eq!(d1.removed, d2.removed, "delete, directed = {directed}");
            assert_eq!(plain.num_edges(), part.num_edges());
            for v in 0..32u32 {
                let sorted = |mut ns: Vec<(Node, Weight)>| {
                    ns.sort_by_key(|&(n, _)| n);
                    ns.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
                };
                assert_eq!(sorted(plain.out_neighbors(v)), sorted(part.out_neighbors(v)));
                assert_eq!(sorted(plain.in_neighbors(v)), sorted(part.in_neighbors(v)));
            }
        }
    }

    #[test]
    fn partitioned_hub_batch_is_exact() {
        let g = Stinger::new(1001, true).with_partitioned_ingest(true);
        let batch: Vec<Edge> = (1..=1000)
            .map(|i| Edge::new(0, i, 1.0))
            .chain((1..=1000).map(|i| Edge::new(0, i, 1.0)))
            .collect();
        let stats = g.update_batch(&batch, &pool());
        assert_eq!(stats.inserted, 1000);
        assert_eq!(stats.duplicates, 1000);
        assert_eq!(g.out_degree(0), 1000);
        let mut ns: Vec<Node> = g.out_neighbors(0).into_iter().map(|(n, _)| n).collect();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), 1000);
    }

    #[test]
    fn undirected_mirrors() {
        let g = Stinger::new(6, false);
        let stats = g.update_batch(&[Edge::new(5, 2, 3.0)], &pool());
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.out_neighbors(5), vec![(2, 3.0)]);
        assert_eq!(g.in_neighbors(5), vec![(2, 3.0)]);
        assert_eq!(g.out_neighbors(2), vec![(5, 3.0)]);
    }

    #[test]
    fn custom_block_size() {
        let g = Stinger::with_block_size(5, true, 2);
        let batch: Vec<Edge> = (1..=4).map(|i| Edge::new(0, i, 1.0)).collect();
        g.update_batch(&batch, &pool());
        assert_eq!(g.out.vertices[0].chain.lock().len(), 2);
        assert_eq!(g.out_degree(0), 4);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = Stinger::with_block_size(5, true, 0);
    }
}
