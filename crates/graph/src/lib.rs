//! Dynamic graph data structures for streaming graph analytics.
//!
//! This crate implements the four vertex-centric, multithreaded-update data
//! structures of SAGA-Bench (§III-A of the paper), all behind the common
//! [`DynamicGraph`] trait (the paper's `update()` / `out_neigh()` /
//! `in_neigh()` API, §III-D):
//!
//! | Kind | Module | Update mechanism | Multithreading | Intra-node parallelism |
//! |------|--------|------------------|----------------|------------------------|
//! | [`AdjacencyShared`] (AS) | [`adjacency_shared`] | search+insert in contiguous vectors | shared-memory, one lock per source vertex | no |
//! | [`AdjacencyChunked`] (AC) | [`adjacency_chunked`] | search+insert in contiguous vectors | chunked, lock-free within a chunk | no |
//! | [`Stinger`] | [`stinger`] | two scans over linked 16-edge blocks | shared-memory, fine-grained per-block locks | yes |
//! | [`Dah`] (degree-aware hashing) | [`dah`] | hash-based, Robin Hood low-degree + open-addressing high-degree tables | chunked, lock-free within a chunk | no |
//!
//! A fifth structure extends the matrix beyond the paper:
//! [`DeltaCsr`] (module [`delta_csr`]) — an immutable CSR snapshot plus a
//! small chunked delta overlay, merged on threshold, trading a bounded
//! amortized compaction cost for static-layout neighbor scans. It is not
//! part of [`DataStructureKind::ALL`] (the paper's four); iterate
//! [`DataStructureKind::ALL_WITH_DELTA`] to include it.
//!
//! Every insert is preceded by a search so that edges are ingested uniquely
//! (§III-A), and directed graphs maintain a second copy of the structure for
//! in-neighbors (footnote 3). Vertex property values live outside the
//! topology in [`properties`] arrays (footnote 4).
//!
//! [`AdjacencyShared`]: adjacency_shared::AdjacencyShared
//! [`AdjacencyChunked`]: adjacency_chunked::AdjacencyChunked
//! [`Stinger`]: stinger::Stinger
//! [`Dah`]: dah::Dah
//! [`DeltaCsr`]: delta_csr::DeltaCsr
//!
//! # Examples
//!
//! ```
//! use saga_graph::{build_graph, DataStructureKind, Edge};
//! use saga_utils::parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! let graph = build_graph(DataStructureKind::Stinger, 10, true, pool.threads());
//! let batch = vec![Edge::new(0, 1, 1.0), Edge::new(0, 2, 2.0), Edge::new(0, 1, 9.0)];
//! let stats = graph.update_batch(&batch, &pool);
//! assert_eq!(stats.inserted, 2); // the duplicate (0, 1) is ingested once
//! assert_eq!(graph.out_degree(0), 2);
//! assert_eq!(graph.in_degree(1), 1);
//! ```

#![warn(missing_docs)]

pub mod adjacency_chunked;
pub mod adjacency_shared;
pub mod csr;
pub mod dah;
pub mod delta_csr;
pub mod hash_tables;
pub mod oracle;
pub mod properties;
pub mod snapshots;
pub mod stinger;

use saga_utils::parallel::ThreadPool;

/// Vertex identifier. The paper's datasets fit comfortably in 32 bits.
pub type Node = u32;

/// Edge weight (used by SSSP and SSWP; ignored by the other algorithms).
pub type Weight = f32;

/// A directed, weighted edge in the input stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: Node,
    /// Destination vertex.
    pub dst: Node,
    /// Weight carried by the edge.
    pub weight: Weight,
}

impl Edge {
    /// Creates an edge.
    pub fn new(src: Node, dst: Node, weight: Weight) -> Self {
        Self { src, dst, weight }
    }
}

/// Outcome of ingesting one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Edges newly inserted by this batch.
    pub inserted: usize,
    /// Edges that were already present (searched, found, skipped).
    pub duplicates: usize,
}

impl UpdateStats {
    /// Merges two per-thread tallies.
    pub fn merge(self, other: UpdateStats) -> UpdateStats {
        UpdateStats {
            inserted: self.inserted + other.inserted,
            duplicates: self.duplicates + other.duplicates,
        }
    }
}

/// Which data structure to use: the paper's four (§III-A) plus the
/// delta-CSR hybrid extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataStructureKind {
    /// Adjacency list with shared-style multithreading (AS).
    AdjacencyShared,
    /// Adjacency list with chunked-style multithreading (AC).
    AdjacencyChunked,
    /// Stinger: linked edge blocks with fine-grained locks.
    Stinger,
    /// Degree-aware hashing (DAH).
    Dah,
    /// Delta-CSR hybrid: immutable CSR snapshot + compacting delta overlay
    /// (extension beyond the paper's four).
    DeltaCsr,
}

impl DataStructureKind {
    /// The paper's four kinds, in its presentation order. Experiments that
    /// reproduce the paper's tables iterate this; the delta-CSR extension
    /// is deliberately excluded so those figures keep the paper's shape.
    pub const ALL: [DataStructureKind; 4] = [
        DataStructureKind::AdjacencyShared,
        DataStructureKind::AdjacencyChunked,
        DataStructureKind::Stinger,
        DataStructureKind::Dah,
    ];

    /// Every kind including the delta-CSR extension — the differential
    /// harness and the compute-phase benchmarks iterate this.
    pub const ALL_WITH_DELTA: [DataStructureKind; 5] = [
        DataStructureKind::AdjacencyShared,
        DataStructureKind::AdjacencyChunked,
        DataStructureKind::Stinger,
        DataStructureKind::Dah,
        DataStructureKind::DeltaCsr,
    ];

    /// The structure's abbreviation (the paper's AS, AC, Stinger, DAH,
    /// plus DeltaCSR for the extension).
    pub fn abbrev(&self) -> &'static str {
        match self {
            DataStructureKind::AdjacencyShared => "AS",
            DataStructureKind::AdjacencyChunked => "AC",
            DataStructureKind::Stinger => "Stinger",
            DataStructureKind::Dah => "DAH",
            DataStructureKind::DeltaCsr => "DeltaCSR",
        }
    }
}

impl std::fmt::Display for DataStructureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Read-only view of a graph's topology — the traversal half of the
/// paper's API (`out_neigh()` / `in_neigh()`, §III-D).
///
/// The compute engines only need this trait, so they run equally on a live
/// [`DynamicGraph`] and on an immutable snapshot (see [`csr::Csr`] and
/// [`snapshots`]), which is what enables the pipelined
/// update-parallel-with-compute execution model the paper lists as future
/// work (footnote 1).
///
/// # Reentrancy
///
/// Implementations may hold an internal fine-grained lock (a vertex's
/// vector, a chunk, an edge block) while invoking a `for_each_*` callback.
/// Callbacks must therefore not call back into the same graph — collect
/// what you need first, then query (see `PrProgram::pull` for the
/// pattern). Reading separate property arrays from a callback is always
/// fine.
pub trait GraphTopology: Send + Sync {
    /// Maximum number of vertices (fixed at construction; the stream's
    /// vertex-id universe is known per dataset, Table II).
    fn capacity(&self) -> usize;

    /// Unique directed edges currently stored (an undirected input edge
    /// counts once).
    fn num_edges(&self) -> usize;

    /// Whether the graph is directed. Undirected graphs (Orkut) ingest each
    /// edge in both directions and serve `in_*` from the out-structure.
    fn is_directed(&self) -> bool;

    /// Current out-degree of `v`.
    fn out_degree(&self, v: Node) -> usize;

    /// Current in-degree of `v`.
    fn in_degree(&self, v: Node) -> usize;

    /// Visits every out-neighbor of `v` — the paper's `out_neigh()`.
    fn for_each_out_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight));

    /// Visits every in-neighbor of `v` — the paper's `in_neigh()`.
    fn for_each_in_neighbor(&self, v: Node, f: &mut dyn FnMut(Node, Weight));

    /// Collects the out-neighbors of `v` (convenience; allocates).
    fn out_neighbors(&self, v: Node) -> Vec<(Node, Weight)> {
        let mut out = Vec::with_capacity(self.out_degree(v));
        self.for_each_out_neighbor(v, &mut |n, w| out.push((n, w)));
        out
    }

    /// Collects the in-neighbors of `v` (convenience; allocates).
    fn in_neighbors(&self, v: Node) -> Vec<(Node, Weight)> {
        let mut out = Vec::with_capacity(self.in_degree(v));
        self.for_each_in_neighbor(v, &mut |n, w| out.push((n, w)));
        out
    }
}

/// Common interface of the streaming graph data structures — the paper's
/// `update()` API on top of [`GraphTopology`] (§III-D).
///
/// Implementations ingest batches concurrently through interior mutability
/// (`update_batch` takes `&self`); in the interleaved execution model
/// (Fig. 2b) the update and compute phases never overlap, so traversal
/// during compute sees a stable topology.
pub trait DynamicGraph: GraphTopology {
    /// Ingests a batch of edges using the given pool — the *update phase*.
    /// Duplicate edges (already present or repeated within the batch) are
    /// ingested once, per the search-before-insert rule of §III-A.
    fn update_batch(&self, batch: &[Edge], pool: &ThreadPool) -> UpdateStats;

    /// Which data structure this is.
    fn kind(&self) -> DataStructureKind;
}

/// Outcome of deleting one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Edges found and removed.
    pub removed: usize,
    /// Edges that were not present (including batch-internal repeats).
    pub missing: usize,
}

impl DeleteStats {
    /// Merges two per-thread tallies.
    pub fn merge(self, other: DeleteStats) -> DeleteStats {
        DeleteStats {
            removed: self.removed + other.removed,
            missing: self.missing + other.missing,
        }
    }
}

/// Edge deletion — an **extension** beyond the paper's v1 benchmark, which
/// streams insertions only. All four structures support it (STINGER's
/// linked blocks were designed for it), with the same batch-parallel
/// discipline as `update_batch`. Edge weights are ignored when matching.
///
/// Deletions break the incremental compute model's monotone invariant (a
/// stored value may depend on an edge that no longer exists), so the INC
/// path repairs after each deletion batch, KickStarter-style: vertices
/// whose value may derive from a deleted edge are found by a tag-closure
/// over derivation edges, reset to the program's initial value, and
/// reseeded from surviving in-neighbors before the normal trigger rounds
/// (`saga_algorithms::inc::incremental_compute_with_deletions`). When the
/// cascade would exceed a size threshold, the driver falls back to a
/// from-scratch recomputation of that batch instead.
pub trait DeletableGraph: DynamicGraph {
    /// Deletes a batch of edges. Undirected graphs remove both stored
    /// directions of each logical edge; an edge appearing twice in the
    /// batch is removed once and counted missing once.
    fn delete_batch(&self, batch: &[Edge], pool: &ThreadPool) -> DeleteStats;
}

/// Builds a graph of the requested kind.
///
/// `chunks` controls the number of single-threaded chunks for the chunked
/// structures (AC, DAH); the paper pairs one chunk with one update thread,
/// so pass the pool's thread count. It is ignored by AS and Stinger.
pub fn build_graph(
    kind: DataStructureKind,
    capacity: usize,
    directed: bool,
    chunks: usize,
) -> Box<dyn DynamicGraph> {
    build_graph_with(kind, capacity, directed, chunks, false)
}

/// [`build_graph`] with an explicit partitioned-ingest choice.
///
/// `partitioned_ingest` routes AS and Stinger batches through the
/// counting-sort partitioner so each vertex is updated by exactly one
/// worker (no lock contention); it departs from the paper's shared-style
/// multithreading and is off in `build_graph`. AC and DAH always partition
/// — for them routing is an implementation detail of finding each chunk's
/// edges, not a change to the paper's chunked ownership — so the flag is a
/// no-op there.
pub fn build_graph_with(
    kind: DataStructureKind,
    capacity: usize,
    directed: bool,
    chunks: usize,
    partitioned_ingest: bool,
) -> Box<dyn DynamicGraph> {
    match kind {
        DataStructureKind::AdjacencyShared => Box::new(
            adjacency_shared::AdjacencyShared::new(capacity, directed)
                .with_partitioned_ingest(partitioned_ingest),
        ),
        DataStructureKind::AdjacencyChunked => Box::new(
            adjacency_chunked::AdjacencyChunked::new(capacity, directed, chunks),
        ),
        DataStructureKind::Stinger => Box::new(
            stinger::Stinger::new(capacity, directed).with_partitioned_ingest(partitioned_ingest),
        ),
        DataStructureKind::Dah => Box::new(dah::Dah::new(capacity, directed, chunks)),
        DataStructureKind::DeltaCsr => {
            Box::new(delta_csr::DeltaCsr::new(capacity, directed, chunks))
        }
    }
}

/// Builds a graph of the requested kind behind the deletion-capable
/// interface (all structures support it).
pub fn build_deletable_graph(
    kind: DataStructureKind,
    capacity: usize,
    directed: bool,
    chunks: usize,
) -> Box<dyn DeletableGraph> {
    build_deletable_graph_with(kind, capacity, directed, chunks, false)
}

/// [`build_deletable_graph`] with an explicit partitioned-ingest choice
/// (see [`build_graph_with`]).
pub fn build_deletable_graph_with(
    kind: DataStructureKind,
    capacity: usize,
    directed: bool,
    chunks: usize,
    partitioned_ingest: bool,
) -> Box<dyn DeletableGraph> {
    match kind {
        DataStructureKind::AdjacencyShared => Box::new(
            adjacency_shared::AdjacencyShared::new(capacity, directed)
                .with_partitioned_ingest(partitioned_ingest),
        ),
        DataStructureKind::AdjacencyChunked => Box::new(
            adjacency_chunked::AdjacencyChunked::new(capacity, directed, chunks),
        ),
        DataStructureKind::Stinger => Box::new(
            stinger::Stinger::new(capacity, directed).with_partitioned_ingest(partitioned_ingest),
        ),
        DataStructureKind::Dah => Box::new(dah::Dah::new(capacity, directed, chunks)),
        DataStructureKind::DeltaCsr => {
            Box::new(delta_csr::DeltaCsr::new(capacity, directed, chunks))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_abbreviations_match_the_paper() {
        assert_eq!(DataStructureKind::AdjacencyShared.abbrev(), "AS");
        assert_eq!(DataStructureKind::AdjacencyChunked.abbrev(), "AC");
        assert_eq!(DataStructureKind::Stinger.abbrev(), "Stinger");
        assert_eq!(DataStructureKind::Dah.abbrev(), "DAH");
        assert_eq!(DataStructureKind::ALL.len(), 4);
        assert_eq!(DataStructureKind::DeltaCsr.abbrev(), "DeltaCSR");
        assert_eq!(DataStructureKind::ALL_WITH_DELTA.len(), 5);
        assert_eq!(
            DataStructureKind::ALL_WITH_DELTA[..4],
            DataStructureKind::ALL
        );
    }

    #[test]
    fn update_stats_merge_adds_fields() {
        let a = UpdateStats {
            inserted: 3,
            duplicates: 1,
        };
        let b = UpdateStats {
            inserted: 2,
            duplicates: 4,
        };
        let m = a.merge(b);
        assert_eq!(m.inserted, 5);
        assert_eq!(m.duplicates, 5);
    }

    #[test]
    fn edge_constructor_roundtrips() {
        let e = Edge::new(3, 7, 2.5);
        assert_eq!(e.src, 3);
        assert_eq!(e.dst, 7);
        assert_eq!(e.weight, 2.5);
    }
}
