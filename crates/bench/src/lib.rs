//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index) and honors the same environment
//! knobs:
//!
//! | Variable | Meaning | Default |
//! |----------|---------|---------|
//! | `SAGA_SCALE` | dataset scale multiplier | `1.0` |
//! | `SAGA_REPEATS` | repeated runs per configuration | `3` |
//! | `SAGA_THREADS` | worker threads | available parallelism |
//! | `SAGA_SEED` | stream generation seed | `42` |
//! | `SAGA_DATASETS` | comma-separated dataset filter (LJ,Orkut,RMAT,Wiki,Talk) | all |
//! | `SAGA_ALGS` | comma-separated algorithm filter (BFS,CC,MC,PR,SSSP,SSWP) | all |
//! | `SAGA_RESULTS_DIR` | output directory | `results/` |

#![warn(missing_docs)]

pub mod arch;
pub mod experiments;

use saga_algorithms::AlgorithmKind;
use saga_core::experiment::ExperimentConfig;
use saga_stream::profiles::DatasetProfile;

/// Reads an environment variable, parsed, with a default.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the experiment configuration from the environment.
pub fn config_from_env() -> ExperimentConfig {
    let default = ExperimentConfig::default();
    ExperimentConfig {
        seed: env_or("SAGA_SEED", default.seed),
        repeats: env_or("SAGA_REPEATS", default.repeats),
        threads: env_or("SAGA_THREADS", default.threads),
        batch_size: None,
        scale: env_or("SAGA_SCALE", default.scale),
    }
}

/// The datasets selected by `SAGA_DATASETS` (default: all five).
pub fn datasets_from_env() -> Vec<DatasetProfile> {
    let all = DatasetProfile::all();
    match std::env::var("SAGA_DATASETS") {
        Err(_) => all,
        Ok(filter) => {
            let wanted: Vec<String> = filter
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            all.into_iter()
                .filter(|p| wanted.iter().any(|w| w == &p.name().to_ascii_lowercase()))
                .collect()
        }
    }
}

/// The algorithms selected by `SAGA_ALGS` (default: all six).
pub fn algorithms_from_env() -> Vec<AlgorithmKind> {
    match std::env::var("SAGA_ALGS") {
        Err(_) => AlgorithmKind::ALL.to_vec(),
        Ok(filter) => {
            let wanted: Vec<String> = filter
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            AlgorithmKind::ALL
                .into_iter()
                .filter(|a| wanted.iter().any(|w| w == &a.abbrev().to_ascii_lowercase()))
                .collect()
        }
    }
}

/// Standard observability epilogue for a figure binary: when tracing is
/// enabled (`SAGA_TRACE=1`, see [`saga_trace::init_from_env`]), writes the
/// captured span timeline to `results/<stem>.trace.json` (Chrome
/// trace-event format — open in Perfetto or `chrome://tracing`); whenever
/// the metrics registry is non-empty, writes its snapshot to
/// `results/<stem>.metrics.csv`. Reports how many events overflowed the
/// per-thread rings so a truncated capture is never mistaken for a
/// complete one.
pub fn finish_trace(stem: &str) {
    if saga_trace::enabled() {
        let dropped = saga_trace::dropped_events();
        if dropped > 0 {
            saga_trace::progress!("[{stem}] ring overflow: {dropped} trace events dropped");
        }
        match saga_core::report::write_results_file(
            &format!("{stem}.trace.json"),
            &saga_trace::chrome_trace(),
        ) {
            Ok(path) => println!("[trace written to {}]", path.display()),
            Err(e) => eprintln!("[could not write trace file: {e}]"),
        }
    }
    match saga_core::report::write_metrics_snapshot(stem) {
        Ok(Some(path)) => println!("[metrics written to {}]", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("[could not write metrics snapshot: {e}]"),
    }
}

/// Prints a rendered table to stdout and mirrors it to `results/<file>`.
pub fn emit(title: &str, file: &str, body: &str) {
    println!("== {title} ==\n");
    println!("{body}");
    match saga_core::report::write_results_file(file, body) {
        Ok(path) => println!("[written to {}]", path.display()),
        Err(e) => eprintln!("[could not write results file: {e}]"),
    }
}

/// Like [`emit`], but also writes the table's CSV rendering next to the
/// text file (same stem, `.csv` extension).
pub fn emit_table(title: &str, file: &str, table: &saga_core::report::TextTable) {
    emit(title, file, &table.render());
    let csv_name = match file.rsplit_once('.') {
        Some((stem, _)) => format!("{stem}.csv"),
        None => format!("{file}.csv"),
    };
    if let Err(e) = saga_core::report::write_results_file(&csv_name, &table.to_csv()) {
        eprintln!("[could not write csv file: {e}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_or_falls_back_on_missing() {
        std::env::remove_var("SAGA_TEST_MISSING");
        assert_eq!(env_or("SAGA_TEST_MISSING", 7usize), 7);
    }

    #[test]
    fn env_or_parses_when_present() {
        std::env::set_var("SAGA_TEST_PRESENT", "2.5");
        assert_eq!(env_or("SAGA_TEST_PRESENT", 1.0f64), 2.5);
        std::env::remove_var("SAGA_TEST_PRESENT");
    }

    #[test]
    fn dataset_filter_selects_by_name() {
        std::env::set_var("SAGA_DATASETS", "wiki, talk");
        let ds = datasets_from_env();
        std::env::remove_var("SAGA_DATASETS");
        let names: Vec<&str> = ds.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Wiki", "Talk"]);
    }

    #[test]
    fn algorithm_filter_selects_by_abbrev() {
        std::env::set_var("SAGA_ALGS", "pr,bfs");
        let algs = algorithms_from_env();
        std::env::remove_var("SAGA_ALGS");
        assert_eq!(algs, vec![AlgorithmKind::Bfs, AlgorithmKind::PageRank]);
    }
}
