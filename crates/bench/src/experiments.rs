//! Reusable experiment entry points.
//!
//! The figure binaries in `src/bin/` used to own their measurement loops;
//! the loops now live here so the same code paths serve three callers:
//! the binaries (full-scale regeneration of `results/`), the `saga-check`
//! shape-regression suite (scaled-down re-runs asserting the
//! EXPERIMENTS.md scorecard), and ad-hoc exploration.

use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_core::experiment::{
    best_at, normalized_to, sweep_combinations, ExperimentConfig, Metric,
};
use saga_core::stages::Stage;
use saga_graph::{build_graph, DataStructureKind};
use saga_stream::profiles::DatasetProfile;
use saga_stream::zipf::EndpointDist;
use saga_stream::{weight_for, Edge, Node};
use saga_trace::metrics::{Histogram, HistogramSummary};
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;
use rand_xoshiro::rand_core::SeedableRng;

/// Fig. 7 row: FS compute latency normalized to INC at the dataset's best
/// data structure, per stage.
#[derive(Debug, Clone)]
pub struct ModelRatios {
    /// The data structure the ratios are measured on (best at P3 batch
    /// latency, the figure's caption rule).
    pub best_ds: DataStructureKind,
    /// FS/INC compute-latency ratio at P1/P2/P3.
    pub fs_over_inc: [f64; 3],
}

/// Measures the Fig. 7 FS/INC compute ratio for one algorithm × dataset.
pub fn fs_over_inc(
    profile: &DatasetProfile,
    alg: AlgorithmKind,
    cfg: &ExperimentConfig,
) -> ModelRatios {
    let results = sweep_combinations(profile, alg, cfg);
    let best_ds = best_at(&results, Stage::P3, Metric::Batch).best.0;
    let compute_of = |cm: ComputeModelKind, stage: Stage| {
        results
            .iter()
            .find(|r| r.ds == best_ds && r.cm == cm)
            .map(|r| r.summary(stage, Metric::Compute).mean)
            .unwrap_or(f64::NAN)
    };
    let mut fs_over_inc = [f64::NAN; 3];
    for stage in Stage::ALL {
        fs_over_inc[stage.index()] = compute_of(ComputeModelKind::FromScratch, stage)
            / compute_of(ComputeModelKind::Incremental, stage);
    }
    ModelRatios {
        best_ds,
        fs_over_inc,
    }
}

/// Fig. 8 row: the update phase's share of batch latency at the best
/// combination, per stage.
#[derive(Debug, Clone)]
pub struct UpdateShare {
    /// The best (data structure, compute model) at P3 batch latency.
    pub best: (DataStructureKind, ComputeModelKind),
    /// Update fraction of batch latency at P1/P2/P3, in `[0, 1]`.
    pub share: [f64; 3],
}

/// Measures the Fig. 8 update share for one algorithm × dataset.
pub fn update_share(
    profile: &DatasetProfile,
    alg: AlgorithmKind,
    cfg: &ExperimentConfig,
) -> UpdateShare {
    let results = sweep_combinations(profile, alg, cfg);
    let best = best_at(&results, Stage::P3, Metric::Batch).best;
    let combo = results
        .iter()
        .find(|r| (r.ds, r.cm) == best)
        .expect("best combination exists");
    let mut share = [f64::NAN; 3];
    for stage in Stage::ALL {
        share[stage.index()] = combo.stages[stage.index()].update_fraction();
    }
    UpdateShare { best, share }
}

/// Fig. 6 row: per-metric P3 latencies of every structure normalized to
/// AS, at the dataset's best compute model.
#[derive(Debug, Clone)]
pub struct StructureNorms {
    /// The compute model the comparison is isolated at.
    pub cm: ComputeModelKind,
    /// Batch latency relative to AS (panel a).
    pub batch: Vec<(DataStructureKind, f64)>,
    /// Update latency relative to AS (panel b).
    pub update: Vec<(DataStructureKind, f64)>,
    /// Compute latency relative to AS (panel c).
    pub compute: Vec<(DataStructureKind, f64)>,
}

impl StructureNorms {
    /// The ratio for one structure in one panel (`NaN` when absent).
    pub fn ratio(panel: &[(DataStructureKind, f64)], ds: DataStructureKind) -> f64 {
        panel
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|&(_, r)| r)
            .unwrap_or(f64::NAN)
    }
}

/// Measures the Fig. 6 normalized structure latencies for one algorithm ×
/// dataset.
pub fn structure_norms(
    profile: &DatasetProfile,
    alg: AlgorithmKind,
    cfg: &ExperimentConfig,
) -> StructureNorms {
    let results = sweep_combinations(profile, alg, cfg);
    let cm = best_at(&results, Stage::P3, Metric::Batch).best.1;
    let norm = |metric| {
        normalized_to(
            &results,
            DataStructureKind::AdjacencyShared,
            cm,
            Stage::P3,
            metric,
        )
    };
    StructureNorms {
        cm,
        batch: norm(Metric::Batch),
        update: norm(Metric::Update),
        compute: norm(Metric::Compute),
    }
}

/// Generates the tail-sweep's Wiki-like stream with an explicit in-hub
/// mass: `mass` of all destination endpoints collapse onto one hub.
pub fn tail_sweep_stream(nodes: usize, edges: usize, mass: f64, seed: u64) -> Vec<Edge> {
    let out_dist = EndpointDist::zipf(nodes, 0.5, 0.0, seed ^ 0xA5A5);
    let in_dist = EndpointDist::zipf(nodes, 0.5, mass, seed ^ 0x5A5A);
    let mut rng = rand_xoshiro::Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..edges)
        .map(|_| {
            let src: Node = out_dist.sample(&mut rng);
            let dst: Node = in_dist.sample(&mut rng);
            Edge::new(src, dst, weight_for(src, dst))
        })
        .collect()
}

/// One point of the tail sweep.
#[derive(Debug, Clone)]
pub struct TailPoint {
    /// In-hub mass of this point's stream.
    pub mass: f64,
    /// Observed max in-degree within the first batch.
    pub batch_max_in: usize,
    /// Best-of-repeats update latency per structure, milliseconds.
    pub update_ms: Vec<(DataStructureKind, f64)>,
    /// Log-bucketed per-batch update-latency distribution per structure,
    /// across every batch of every repeat (the Fig. 10 tail view; the
    /// histogram's p99 is the paper's tail-latency metric).
    pub update_hist: Vec<(DataStructureKind, HistogramSummary)>,
}

impl TailPoint {
    /// The update latency of one structure (`NaN` when absent).
    pub fn ms(&self, ds: DataStructureKind) -> f64 {
        self.update_ms
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|&(_, m)| m)
            .unwrap_or(f64::NAN)
    }

    /// The p99 per-batch update latency of one structure in milliseconds
    /// (`NaN` when absent).
    pub fn p99_ms(&self, ds: DataStructureKind) -> f64 {
        self.update_hist
            .iter()
            .find(|(d, _)| *d == ds)
            .map(|&(_, h)| h.p99 as f64 / 1e6)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the tail-mass sweep (the Fig. 6b AS↔DAH flip mechanism): for each
/// hub mass, measures the ingest-only update latency of every structure
/// over the stream, best-of-`repeats`.
pub fn tail_sweep(
    masses: &[f64],
    nodes: usize,
    edges: usize,
    batch: usize,
    repeats: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Vec<TailPoint> {
    masses
        .iter()
        .map(|&mass| {
            let stream = tail_sweep_stream(nodes, edges, mass, seed);
            let first = &stream[..batch.min(stream.len())];
            let stats = saga_stream::batch_stats::degree_stats(first, nodes);
            let mut update_ms = Vec::with_capacity(DataStructureKind::ALL.len());
            let mut update_hist = Vec::with_capacity(DataStructureKind::ALL.len());
            for ds in DataStructureKind::ALL {
                // The histogram replaces the bespoke sorted-sample
                // percentile math this sweep used to carry: every
                // per-batch latency of every repeat is recorded, and the
                // summary's p99 is read straight off the buckets.
                let hist = Histogram::new();
                let mut best = f64::INFINITY;
                for _ in 0..repeats.max(1) {
                    let graph = build_graph(ds, nodes, true, pool.threads());
                    let total = Stopwatch::start();
                    for chunk in stream.chunks(batch) {
                        let sw = Stopwatch::start();
                        graph.update_batch(chunk, pool);
                        hist.record_secs(sw.elapsed_secs());
                    }
                    best = best.min(total.elapsed_secs());
                }
                update_ms.push((ds, best * 1e3));
                update_hist.push((ds, hist.summary()));
            }
            TailPoint {
                mass,
                batch_max_in: stats.max_in,
                update_ms,
                update_hist,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            seed: 11,
            repeats: 1,
            threads: 2,
            batch_size: None,
            scale: 0.04,
        }
    }

    #[test]
    fn fs_over_inc_produces_finite_ratios() {
        let r = fs_over_inc(&DatasetProfile::talk(), AlgorithmKind::Cc, &tiny_cfg());
        assert!(r.fs_over_inc.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn update_share_is_a_fraction() {
        let r = update_share(&DatasetProfile::talk(), AlgorithmKind::Bfs, &tiny_cfg());
        assert!(r.share.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn structure_norms_include_all_four_structures() {
        let r = structure_norms(&DatasetProfile::talk(), AlgorithmKind::Bfs, &tiny_cfg());
        for panel in [&r.batch, &r.update, &r.compute] {
            assert_eq!(panel.len(), 4);
            let as_ratio = StructureNorms::ratio(panel, DataStructureKind::AdjacencyShared);
            assert!((as_ratio - 1.0).abs() < 1e-9, "AS normalizes to itself");
        }
    }

    #[test]
    fn tail_sweep_reports_hub_growth() {
        let pool = ThreadPool::new(2);
        let pts = tail_sweep(&[0.0, 0.3], 800, 4_000, 1_000, 1, 3, &pool);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].batch_max_in > pts[0].batch_max_in * 4,
            "hub mass must concentrate the in-degree tail: {} vs {}",
            pts[1].batch_max_in,
            pts[0].batch_max_in
        );
        for p in &pts {
            for ds in DataStructureKind::ALL {
                assert!(p.ms(ds).is_finite());
                assert!(p.p99_ms(ds).is_finite() && p.p99_ms(ds) > 0.0);
            }
            for (_, h) in &p.update_hist {
                // One sample per batch per repeat: 4000 edges / 1000.
                assert_eq!(h.count, 4);
                assert!(h.p50 <= h.p99 && h.p99 <= h.max);
            }
        }
    }
}
