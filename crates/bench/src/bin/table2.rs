//! Regenerates **Table II**: the dataset inventory — vertices, edges, and
//! batch count — for the paper's five datasets and this repository's
//! scaled synthetic stand-ins.
//!
//! ```text
//! cargo run -p saga-bench --release --bin table2
//! ```

use saga_bench::{config_from_env, datasets_from_env, emit};
use saga_core::report::TextTable;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Dataset",
        "paper vertices",
        "paper edges",
        "paper batchCount",
        "scaled vertices",
        "scaled edges",
        "scaled batchCount",
        "directed",
    ]);
    for profile in datasets_from_env() {
        let scaled = profile.clone().scaled_by(cfg.scale);
        let stream = scaled.generate(cfg.seed);
        let paper = profile.paper_stats();
        table.add_row([
            profile.name().to_string(),
            paper.vertices.to_string(),
            paper.edges.to_string(),
            paper.batch_count.to_string(),
            scaled.num_nodes().to_string(),
            stream.edges.len().to_string(),
            stream.suggested_batch_count().to_string(),
        ]
        .into_iter()
        .chain([if profile.is_directed() { "yes" } else { "no" }.to_string()])
        .collect::<Vec<_>>());
    }
    emit("Table II: evaluated datasets", "table2.txt", &table.render());
}
