//! Ablation: delta-CSR compaction-threshold floor. A low floor merges the
//! overlay into the CSR snapshot eagerly (more `O(n + edges)` rebuilds,
//! but neighbor scans stay almost entirely on the static side), a high
//! floor lets the sorted delta chunks grow (cheap updates, but every scan
//! pays the overlay merge). The sweep locates the knee against the
//! default (`256`, scaled by snapshot size).
//!
//! ```text
//! cargo run -p saga-bench --release --bin ablation_compaction
//! ```

use saga_algorithms::bfs::{bfs_direction_optimizing, BfsProgram};
use saga_algorithms::fs::reset_values;
use saga_bench::{config_from_env, emit};
use saga_core::report::{fmt_secs, TextTable};
use saga_graph::delta_csr::DeltaCsr;
use saga_graph::properties::AtomicU32Array;
use saga_graph::DynamicGraph;
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

fn main() {
    let cfg = config_from_env();
    let pool = ThreadPool::new(cfg.threads);
    let mut table = TextTable::new([
        "Dataset", "threshold floor", "update s", "compute s (BFS/FS)", "compactions",
    ]);
    for profile in [DatasetProfile::livejournal(), DatasetProfile::talk()] {
        let profile = profile.scaled_by(cfg.scale);
        let stream = profile.generate(cfg.seed);
        for floor in [64usize, 256, 1024, 4096, usize::MAX / 2] {
            let label = if floor > 1 << 20 {
                "never".to_string()
            } else {
                floor.to_string()
            };
            eprintln!(
                "[ablation_compaction] {} @ floor {label} ...",
                profile.name()
            );
            let graph = DeltaCsr::new(stream.num_nodes, stream.directed, pool.threads())
                .with_compaction_threshold(floor);
            let root = stream.edges.first().map(|e| e.src).unwrap_or(0);
            let program = BfsProgram::new(root);
            let values = AtomicU32Array::filled(stream.num_nodes, 0);
            let mut update_s = 0.0;
            let mut compute_s = 0.0;
            for batch in stream.batches(stream.suggested_batch_size) {
                let sw = Stopwatch::start();
                graph.update_batch(batch, &pool);
                update_s += sw.elapsed_secs();
                let sw = Stopwatch::start();
                reset_values(&program, &values, stream.num_nodes, &pool);
                bfs_direction_optimizing(&program, &graph, &values, &pool);
                compute_s += sw.elapsed_secs();
            }
            table.add_row([
                profile.name().to_string(),
                label,
                fmt_secs(update_s),
                fmt_secs(compute_s),
                graph.compactions().to_string(),
            ]);
        }
    }
    emit(
        "Ablation: delta-CSR compaction-threshold floor (default: 256)",
        "ablation_compaction.txt",
        &table.render(),
    );
}
