//! Ablation: the incremental PageRank triggering threshold ε
//! (Algorithm 1, line 11; the paper uses `1e-7`). Sweeping ε trades
//! compute latency against accuracy relative to a tightly-converged FS
//! PageRank.
//!
//! ```text
//! cargo run -p saga-bench --release --bin ablation_epsilon
//! ```

use saga_algorithms::{AlgorithmKind, AlgorithmParams, ComputeModelKind, VertexValues};
use saga_bench::{config_from_env, emit};
use saga_core::driver::StreamDriver;
use saga_core::report::{fmt_secs, TextTable};
use saga_graph::DataStructureKind;
use saga_stream::profiles::DatasetProfile;

fn l1_error(a: &VertexValues, b: &VertexValues) -> f64 {
    match (a, b) {
        (VertexValues::F64(x), VertexValues::F64(y)) => {
            x.iter().zip(y.iter()).map(|(p, q)| (p - q).abs()).sum()
        }
        _ => f64::NAN,
    }
}

fn main() {
    let cfg = config_from_env();
    let profile = DatasetProfile::livejournal().scaled_by(cfg.scale);
    let stream = profile.generate(cfg.seed);

    // Reference: FS PageRank converged far below every swept epsilon.
    eprintln!("[ablation_epsilon] reference FS run ...");
    let reference = {
        let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, stream.num_nodes)
            .algorithm(AlgorithmKind::PageRank)
            .compute_model(ComputeModelKind::FromScratch)
            .threads(cfg.threads)
            .params(AlgorithmParams {
                pr_fs_tolerance: 1e-12,
                ..AlgorithmParams::default()
            })
            .build();
        driver.run(&stream)
    };

    let mut table = TextTable::new(["epsilon", "compute s", "L1 error vs FS(1e-12)"]);
    for epsilon in [1e-3, 1e-5, 1e-7, 1e-9, 1e-11] {
        eprintln!("[ablation_epsilon] INC with epsilon {epsilon:e} ...");
        let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, stream.num_nodes)
            .algorithm(AlgorithmKind::PageRank)
            .compute_model(ComputeModelKind::Incremental)
            .threads(cfg.threads)
            .params(AlgorithmParams {
                pr_epsilon: epsilon,
                ..AlgorithmParams::default()
            })
            .build();
        let outcome = driver.run(&stream);
        let compute: f64 = outcome.batches.iter().map(|b| b.compute_seconds).sum();
        table.add_row([
            format!("{epsilon:.0e}"),
            fmt_secs(compute),
            format!("{:.2e}", l1_error(&outcome.final_values, &reference.final_values)),
        ]);
    }
    emit(
        "Ablation: incremental PageRank triggering threshold (paper: 1e-7)",
        "ablation_epsilon.txt",
        &table.render(),
    );
}
