//! Compute-phase BFS benchmark: per-batch from-scratch latency on all five
//! structures (the paper's four plus delta-CSR), the direction-optimizing
//! vs. classic top-down kernel comparison on a dense-frontier graph, and a
//! cache-simulated miss-rate contrast between delta-CSR's compacted
//! neighbor scans and AS's pointer-chasing ones.
//!
//! Emits `results/BENCH_compute.json` (checked baseline; see
//! `crates/check/tests/baseline.rs`).
//!
//! ```text
//! cargo run -p saga-bench --release --bin bench_compute
//! ```

use saga_algorithms::bfs::{
    bfs_direction_optimizing, bfs_direction_optimizing_stats, bfs_from_scratch, BfsProgram,
};
use saga_algorithms::fs::reset_values;
use saga_bench::{config_from_env, emit};
use saga_graph::delta_csr::DeltaCsr;
use saga_graph::properties::AtomicU32Array;
use saga_graph::{build_graph, DataStructureKind, DynamicGraph, Edge, GraphTopology, Node};
use saga_perf::{replay_on_paper_machine, trace_phase};
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

const NODES: usize = 20_000;
const BATCH: usize = 20_000;
const BATCHES: usize = 6;
const REPS: usize = 3;
/// Dense-frontier comparison graph: low diameter, uniform degree, so the
/// middle BFS level covers most of the graph and the scout-count heuristic
/// must go bottom-up.
const DENSE_NODES: usize = 50_000;
const DENSE_DEGREE: usize = 16;
/// Cache-hierarchy scale factor for the simulated replay (same knob as
/// `arch_suite`'s `SAGA_CACHE_SCALE` default).
const CACHE_SCALE: usize = 16;

fn time_best<F: FnMut() -> f64>(mut run: F) -> f64 {
    (0..REPS).map(|_| run()).fold(f64::INFINITY, f64::min)
}

/// Per-batch mean FS BFS latency on one structure over the talk stream.
fn bench_structure(ds: DataStructureKind, edges: &[Edge], threads: usize) -> String {
    let pool = ThreadPool::new(threads);
    let graph = build_graph(ds, NODES, true, pool.threads());
    let program = BfsProgram::new(edges[0].src);
    let values = AtomicU32Array::filled(NODES, 0);
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for batch in edges.chunks(BATCH) {
        graph.update_batch(batch, &pool);
        let best = time_best(|| {
            reset_values(&program, &values, NODES, &pool);
            let sw = Stopwatch::start();
            bfs_direction_optimizing(&program, graph.as_ref(), &values, &pool);
            sw.elapsed_secs()
        });
        total += best;
        batches += 1;
    }
    let mean = total / batches as f64;
    let name = ds.abbrev();
    eprintln!(
        "[bench_compute] {name} @ {threads} threads: mean per-batch BFS {:.6}s over {batches} batches",
        mean
    );
    format!(
        "    {{\"structure\": \"{name}\", \"threads\": {threads}, \"batches\": {batches}, \
         \"mean_batch_seconds\": {mean:.6}, \"total_seconds\": {total:.6}}}"
    )
}

/// Classic top-down vs. direction-optimizing BFS on a dense-frontier
/// snapshot (built once; both kernels time pure compute).
fn bench_direction(seed: u64, threads: usize) -> String {
    let edges: Vec<(Node, Node, f32)> = (0..(DENSE_NODES * DENSE_DEGREE) as u64)
        .map(|i| {
            let r = saga_utils::hash::mix64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i));
            (
                ((r >> 8) % DENSE_NODES as u64) as Node,
                ((r >> 32) % DENSE_NODES as u64) as Node,
                1.0,
            )
        })
        .collect();
    let pool = ThreadPool::new(threads);
    let graph = saga_graph::csr::Csr::from_edges(DENSE_NODES, true, &edges);
    let program = BfsProgram::new(edges[0].0);
    let values = AtomicU32Array::filled(DENSE_NODES, 0);
    let topdown = time_best(|| {
        reset_values(&program, &values, DENSE_NODES, &pool);
        let sw = Stopwatch::start();
        bfs_from_scratch(&program, &graph, &values, &pool);
        sw.elapsed_secs()
    });
    let dirop = time_best(|| {
        reset_values(&program, &values, DENSE_NODES, &pool);
        let sw = Stopwatch::start();
        bfs_direction_optimizing(&program, &graph, &values, &pool);
        sw.elapsed_secs()
    });
    reset_values(&program, &values, DENSE_NODES, &pool);
    let stats = bfs_direction_optimizing_stats(&program, &graph, &values, &pool);
    let speedup = topdown / dirop;
    eprintln!(
        "[bench_compute] dense dirop: topdown {topdown:.6}s, dirop {dirop:.6}s, \
         speedup {speedup:.2}x ({}/{} levels bottom-up)",
        stats.bottom_up_levels, stats.levels
    );
    format!(
        "  \"direction_optimizing\": {{\"profile\": \"dense\", \"nodes\": {DENSE_NODES}, \
         \"edges\": {}, \"threads\": {threads}, \"topdown_seconds\": {topdown:.6}, \
         \"dirop_seconds\": {dirop:.6}, \"speedup\": {speedup:.3}, \
         \"levels\": {}, \"bottom_up_levels\": {}}}",
        DENSE_NODES * DENSE_DEGREE,
        stats.levels,
        stats.bottom_up_levels
    )
}

/// Full-graph neighbor scan with the access probe on, replayed through the
/// simulated paper hierarchy: compacted delta-CSR scans in vertex order are
/// sequential in memory, AS's per-vertex heap blocks are not.
fn bench_cache(edges: &[Edge]) -> String {
    let pool = ThreadPool::new(1);
    let scan = |g: &dyn GraphTopology| {
        let mut sum = 0u64;
        for v in 0..NODES {
            g.for_each_out_neighbor(v as Node, &mut |nb, _| sum += u64::from(nb));
        }
        std::hint::black_box(sum);
    };

    let as_graph = build_graph(DataStructureKind::AdjacencyShared, NODES, true, pool.threads());
    as_graph.update_batch(edges, &pool);
    let as_trace = trace_phase(&pool, || scan(as_graph.as_ref()));
    let as_report = replay_on_paper_machine(&as_trace, CACHE_SCALE);

    let delta = DeltaCsr::new(NODES, true, pool.threads());
    delta.update_batch(edges, &pool);
    delta.compact();
    let delta_trace = trace_phase(&pool, || scan(&delta));
    let delta_report = replay_on_paper_machine(&delta_trace, CACHE_SCALE);

    let rate = |dram: u64, accesses: u64| {
        if accesses == 0 {
            0.0
        } else {
            dram as f64 / accesses as f64
        }
    };
    let as_miss = rate(as_report.dram_lines, as_report.accesses);
    let delta_miss = rate(delta_report.dram_lines, delta_report.accesses);
    eprintln!(
        "[bench_compute] neighbor-scan miss rate (DRAM lines / line accesses): \
         AS {as_miss:.4} ({}/{}), DeltaCSR {delta_miss:.4} ({}/{})",
        as_report.dram_lines, as_report.accesses, delta_report.dram_lines, delta_report.accesses
    );
    format!(
        "  \"cache\": {{\"cache_scale\": {CACHE_SCALE}, \
         \"as_accesses\": {}, \"as_dram_lines\": {}, \"as_miss_rate\": {as_miss:.4}, \
         \"delta_accesses\": {}, \"delta_dram_lines\": {}, \"delta_miss_rate\": {delta_miss:.4}}}",
        as_report.accesses, as_report.dram_lines, delta_report.accesses, delta_report.dram_lines
    )
}

fn main() {
    let cfg = config_from_env();
    let threads = cfg.threads.clamp(1, 8);
    let edges = DatasetProfile::talk()
        .scaled(NODES, BATCH * BATCHES)
        .generate(cfg.seed)
        .edges;

    let rows: Vec<String> = DataStructureKind::ALL_WITH_DELTA
        .into_iter()
        .map(|ds| bench_structure(ds, &edges, threads))
        .collect();
    let direction = bench_direction(cfg.seed, threads);
    let cache = bench_cache(&edges);

    let body = format!(
        "{{\n  \"benchmark\": \"compute_bfs\",\n  \"profile\": \"talk\",\n  \
         \"nodes\": {NODES},\n  \"batch_edges\": {BATCH},\n  \"reps\": {REPS},\n  \
         \"seed\": {},\n  \"results\": [\n{}\n  ],\n{},\n{}\n}}\n",
        cfg.seed,
        rows.join(",\n"),
        direction,
        cache
    );
    emit(
        "Compute-phase BFS: per-batch latency, direction-optimizing speedup, cache contrast",
        "BENCH_compute.json",
        &body,
    );
}
