//! Regenerates **Fig. 10**: on-chip cache behaviour of update vs compute
//! (simulated on the paper's hierarchy):
//!
//! - (a) private L2 and shared LLC hit ratios per phase and stage;
//! - (b) update-phase L2/LLC MPKI;
//! - (c) compute-phase L2/LLC MPKI.
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig10
//! ```

use saga_bench::arch::run_arch_characterization;
use saga_bench::{algorithms_from_env, config_from_env, emit, env_or, finish_trace};
use saga_core::report::TextTable;

fn main() {
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let algorithms = algorithms_from_env();
    let cache_scale = env_or("SAGA_CACHE_SCALE", 16usize);
    let results = run_arch_characterization(&cfg, &algorithms, cache_scale);

    let mut table_a = TextTable::new([
        "Group", "Phase", "L2 hit P1", "L2 hit P2", "L2 hit P3", "LLC hit P1", "LLC hit P2",
        "LLC hit P3",
    ]);
    let mut table_b = TextTable::new([
        "Group", "L2 MPKI P1", "L2 MPKI P2", "L2 MPKI P3", "LLC MPKI P1", "LLC MPKI P2",
        "LLC MPKI P3",
    ]);
    let mut table_c = table_b.clone();
    for g in &results {
        for (phase, stats) in [("update", &g.update), ("compute", &g.compute)] {
            table_a.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}%", stats[0].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[1].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[2].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[0].llc_hit.mean * 100.0),
                format!("{:.1}%", stats[1].llc_hit.mean * 100.0),
                format!("{:.1}%", stats[2].llc_hit.mean * 100.0),
            ]);
        }
        let mpki_row = |stats: &[saga_bench::arch::PhaseStageStats; 3]| {
            [
                g.name.to_string(),
                format!("{:.1}", stats[0].l2_mpki.mean),
                format!("{:.1}", stats[1].l2_mpki.mean),
                format!("{:.1}", stats[2].l2_mpki.mean),
                format!("{:.1}", stats[0].llc_mpki.mean),
                format!("{:.1}", stats[1].llc_mpki.mean),
                format!("{:.1}", stats[2].llc_mpki.mean),
            ]
        };
        table_b.add_row(mpki_row(&g.update));
        table_c.add_row(mpki_row(&g.compute));
    }
    emit(
        "Fig. 10(a): private L2 and shared LLC hit ratios (simulated)",
        "fig10a.txt",
        &table_a.render(),
    );
    emit(
        "Fig. 10(b): update-phase L2/LLC MPKI (simulated)",
        "fig10b.txt",
        &table_b.render(),
    );
    emit(
        "Fig. 10(c): compute-phase L2/LLC MPKI (simulated)",
        "fig10c.txt",
        &table_c.render(),
    );
    finish_trace("fig10");
}
