//! Regenerates **Table IV**: max in/out degree for each dataset, over the
//! entire stream and within one batch, plus the short/heavy tail
//! classification of §V-B.
//!
//! ```text
//! cargo run -p saga-bench --release --bin table4
//! ```

use saga_bench::{config_from_env, datasets_from_env, emit};
use saga_core::report::TextTable;
use saga_stream::batch_stats::table4_row;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Dataset",
        "entire max in",
        "entire max out",
        "batch max in",
        "batch max out",
        "batch size",
        "tail",
    ]);
    for profile in datasets_from_env() {
        let scaled = profile.clone().scaled_by(cfg.scale);
        let stream = scaled.generate(cfg.seed);
        let row = table4_row(&stream.edges, stream.num_nodes, stream.suggested_batch_size);
        table.add_row([
            profile.name().to_string(),
            row.entire.max_in.to_string(),
            row.entire.max_out.to_string(),
            row.one_batch.max_in.to_string(),
            row.one_batch.max_out.to_string(),
            row.batch_size.to_string(),
            row.tail.to_string(),
        ]);
    }
    emit(
        "Table IV: max in/out degree per dataset (entire stream vs one batch)",
        "table4.txt",
        &table.render(),
    );
}
