//! Regenerates **Fig. 6**: P3 latencies of AC, DAH, and Stinger normalized
//! to AS, per algorithm and dataset, at each dataset's best compute model
//! (kept best to isolate the impact of the data structure, as the paper's
//! caption prescribes).
//!
//! - panel (a): batch processing latency
//! - panel (b): update latency (BFS only in the paper — update is
//!   algorithm-independent; here emitted for the swept algorithm)
//! - panel (c): compute latency
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig6
//! ```

use saga_bench::experiments::{structure_norms, StructureNorms};
use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit, finish_trace};
use saga_core::report::{fmt_ratio, TextTable};
use saga_graph::DataStructureKind;

fn main() {
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let mut tables = [
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
    ];
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig6] sweeping {alg} x {} ...", profile.name());
            let norms = structure_norms(&profile, alg, &cfg);
            let panels = [&norms.batch, &norms.update, &norms.compute];
            for (t, panel) in tables.iter_mut().zip(panels) {
                let of = |ds: DataStructureKind| {
                    let r = StructureNorms::ratio(panel, ds);
                    if r.is_finite() {
                        fmt_ratio(r)
                    } else {
                        "-".into()
                    }
                };
                t.add_row([
                    alg.to_string(),
                    profile.name().to_string(),
                    norms.cm.to_string(),
                    of(DataStructureKind::AdjacencyChunked),
                    of(DataStructureKind::Dah),
                    of(DataStructureKind::Stinger),
                ]);
            }
        }
    }
    emit(
        "Fig. 6(a): P3 batch processing latency normalized to AS",
        "fig6a.txt",
        &tables[0].render(),
    );
    emit(
        "Fig. 6(b): P3 update latency normalized to AS",
        "fig6b.txt",
        &tables[1].render(),
    );
    emit(
        "Fig. 6(c): P3 compute latency normalized to AS",
        "fig6c.txt",
        &tables[2].render(),
    );
    finish_trace("fig6");
}
