//! Regenerates **Fig. 6**: P3 latencies of AC, DAH, and Stinger normalized
//! to AS, per algorithm and dataset, at each dataset's best compute model
//! (kept best to isolate the impact of the data structure, as the paper's
//! caption prescribes).
//!
//! - panel (a): batch processing latency
//! - panel (b): update latency (BFS only in the paper — update is
//!   algorithm-independent; here emitted for the swept algorithm)
//! - panel (c): compute latency
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig6
//! ```

use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit};
use saga_core::experiment::{best_at, normalized_to, sweep_combinations, Metric};
use saga_core::report::{fmt_ratio, TextTable};
use saga_core::stages::Stage;
use saga_graph::DataStructureKind;

fn main() {
    let cfg = config_from_env();
    let mut tables = [
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
        TextTable::new(["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"]),
    ];
    let metrics = [Metric::Batch, Metric::Update, Metric::Compute];
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig6] sweeping {alg} x {} ...", profile.name());
            let results = sweep_combinations(&profile, alg, &cfg);
            // The dataset's best compute model at P3 (Table III column).
            let best_cm = best_at(&results, Stage::P3, Metric::Batch).best.1;
            for (t, metric) in tables.iter_mut().zip(metrics) {
                let norm = normalized_to(
                    &results,
                    DataStructureKind::AdjacencyShared,
                    best_cm,
                    Stage::P3,
                    metric,
                );
                let of = |ds: DataStructureKind| {
                    norm.iter()
                        .find(|(d, _)| *d == ds)
                        .map(|&(_, r)| fmt_ratio(r))
                        .unwrap_or_else(|| "-".into())
                };
                t.add_row([
                    alg.to_string(),
                    profile.name().to_string(),
                    best_cm.to_string(),
                    of(DataStructureKind::AdjacencyChunked),
                    of(DataStructureKind::Dah),
                    of(DataStructureKind::Stinger),
                ]);
            }
        }
    }
    emit(
        "Fig. 6(a): P3 batch processing latency normalized to AS",
        "fig6a.txt",
        &tables[0].render(),
    );
    emit(
        "Fig. 6(b): P3 update latency normalized to AS",
        "fig6b.txt",
        &tables[1].render(),
    );
    emit(
        "Fig. 6(c): P3 compute latency normalized to AS",
        "fig6c.txt",
        &tables[2].render(),
    );
}
