//! Ablation: shared-style (AS) vs chunked-style (AC) multithreading for
//! the *same* adjacency-list structure, isolating the paper's §V-B claim
//! that "the choice of multithreading technique is important for the
//! update phase": heavy-tailed graphs update faster on the lockless
//! chunked style, short-tailed graphs on the shared style.
//!
//! ```text
//! cargo run -p saga-bench --release --bin ablation_locking
//! ```

use saga_bench::{config_from_env, datasets_from_env, emit};
use saga_core::driver::StreamDriver;
use saga_core::report::{fmt_ratio, fmt_secs, TextTable};
use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_graph::DataStructureKind;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new(["Dataset", "tail", "AS update s", "AC update s", "AC/AS"]);
    for profile in datasets_from_env() {
        let profile = profile.scaled_by(cfg.scale);
        let stream = profile.generate(cfg.seed);
        eprintln!("[ablation_locking] {} ...", profile.name());
        let update_seconds = |ds: DataStructureKind| {
            let mut best = f64::INFINITY;
            for _ in 0..cfg.repeats.max(1) {
                let mut driver = StreamDriver::builder(ds, stream.num_nodes)
                    .algorithm(AlgorithmKind::Bfs) // update is algorithm-independent
                    .compute_model(ComputeModelKind::Incremental)
                    .threads(cfg.threads)
                    .build();
                let outcome = driver.run(&stream);
                let total: f64 = outcome.batches.iter().map(|b| b.update_seconds).sum();
                best = best.min(total);
            }
            best
        };
        let as_s = update_seconds(DataStructureKind::AdjacencyShared);
        let ac_s = update_seconds(DataStructureKind::AdjacencyChunked);
        table.add_row([
            profile.name().to_string(),
            if profile.is_heavy_tailed() { "heavy" } else { "short" }.to_string(),
            fmt_secs(as_s),
            fmt_secs(ac_s),
            fmt_ratio(ac_s / as_s),
        ]);
    }
    emit(
        "Ablation: shared (AS) vs chunked (AC) update multithreading",
        "ablation_locking.txt",
        &table.render(),
    );
}
