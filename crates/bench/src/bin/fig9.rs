//! Regenerates **Fig. 9**:
//!
//! - (a) update/compute performance scalability vs core count for STail
//!   (LJ/Orkut/RMAT on AS) and HTail (Wiki/Talk on DAH). By default the
//!   curve is *modeled*: each thread count is run, traced, and its phase
//!   time estimated as `max(slowest thread, most-contended lock)` on the
//!   paper's machine model — faithful to the paper's insight that update
//!   scaling is limited by thread contention (AS) and workload imbalance
//!   (DAH). Set `SAGA_WALLCLOCK=1` on a many-core host to use real wall
//!   clocks instead.
//! - (b) memory bandwidth utilization per phase and stage (simulated);
//! - (c) QPI inter-socket utilization per phase and stage (simulated).
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig9
//! # single panel: SAGA_PANEL=a cargo run -p saga-bench --release --bin fig9
//! ```

use saga_algorithms::ComputeModelKind;
use saga_bench::arch::{groups, run_arch_characterization};
use saga_bench::{algorithms_from_env, config_from_env, emit, env_or, finish_trace};
use saga_core::driver::{ArchSimConfig, StreamDriver};
use saga_core::report::TextTable;
use saga_perf::scaling::ScalingCurve;

/// Thread counts swept for the scaling panel (the paper sweeps 4..28
/// physical cores; we sweep powers of two up to the paper's 32).
fn sweep_threads() -> Vec<usize> {
    match std::env::var("SAGA_SWEEP") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect(),
        Err(_) => vec![1, 2, 4, 8, 16, 32],
    }
}

fn panel_a() {
    let cfg = config_from_env();
    let algorithms = algorithms_from_env();
    let wallclock = env_or("SAGA_WALLCLOCK", 0usize) == 1;
    let cache_scale = env_or("SAGA_CACHE_SCALE", 16usize);
    let thread_counts = sweep_threads();
    let mut table = TextTable::new({
        let mut h = vec!["Group".to_string(), "Phase".to_string()];
        h.extend(thread_counts.iter().map(|t| format!("{t}T")));
        h.push("incr. improvements".to_string());
        h
    });
    for group in groups() {
        let mut update_secs = vec![0.0f64; thread_counts.len()];
        let mut compute_secs = vec![0.0f64; thread_counts.len()];
        for (profile, ds) in &group.members {
            let profile = profile.clone().scaled_by(cfg.scale);
            let stream = profile.generate(cfg.seed);
            for &alg in &algorithms {
                for (i, &threads) in thread_counts.iter().enumerate() {
                    eprintln!(
                        "[fig9a] {} / {} / {alg} @ {threads} threads ({})",
                        group.name,
                        profile.name(),
                        if wallclock { "wall clock" } else { "modeled" },
                    );
                    let mut builder = StreamDriver::builder(*ds, stream.num_nodes)
                        .algorithm(alg)
                        .compute_model(ComputeModelKind::Incremental)
                        .threads(threads);
                    if !wallclock {
                        builder = builder.arch_sim(ArchSimConfig {
                            cache_scale,
                            ..ArchSimConfig::default()
                        });
                    }
                    let mut driver = builder.build();
                    let outcome = driver.run(&stream);
                    for b in &outcome.batches {
                        if wallclock {
                            update_secs[i] += b.update_seconds;
                            compute_secs[i] += b.compute_seconds;
                        } else {
                            let arch = b.arch.as_ref().expect("arch sim enabled");
                            update_secs[i] += arch.update_bw.seconds;
                            compute_secs[i] += arch.compute_bw.seconds;
                        }
                    }
                }
            }
        }
        for (phase, secs) in [("update", update_secs), ("compute", compute_secs)] {
            let curve = ScalingCurve {
                threads: thread_counts.clone(),
                seconds: secs,
            };
            let mut row = vec![group.name.to_string(), phase.to_string()];
            row.extend(curve.speedups().iter().map(|s| format!("{s:.2}x")));
            row.push(
                curve
                    .incremental_improvements()
                    .iter()
                    .map(|i| format!("{i:.0}%"))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            table.add_row(row);
        }
    }
    emit(
        "Fig. 9(a): update/compute speedup vs thread count (normalized to smallest)",
        "fig9a.txt",
        &table.render(),
    );
}

fn panels_bc() {
    let cfg = config_from_env();
    let algorithms = algorithms_from_env();
    let cache_scale = env_or("SAGA_CACHE_SCALE", 16usize);
    let results = run_arch_characterization(&cfg, &algorithms, cache_scale);

    let mut table_b = TextTable::new(["Group", "Phase", "P1 GB/s", "P2 GB/s", "P3 GB/s"]);
    let mut table_c = TextTable::new(["Group", "Phase", "P1 QPI%", "P2 QPI%", "P3 QPI%"]);
    for g in &results {
        for (phase, stats) in [("update", &g.update), ("compute", &g.compute)] {
            table_b.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}", stats[0].dram_gbps.mean),
                format!("{:.1}", stats[1].dram_gbps.mean),
                format!("{:.1}", stats[2].dram_gbps.mean),
            ]);
            table_c.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}%", stats[0].qpi_util.mean * 100.0),
                format!("{:.1}%", stats[1].qpi_util.mean * 100.0),
                format!("{:.1}%", stats[2].qpi_util.mean * 100.0),
            ]);
        }
    }
    // Imbalance digest supports the §VI-B insight.
    let mut imbalance = TextTable::new(["Group", "Phase", "P3 imbalance (max/mean thread cycles)"]);
    for g in &results {
        for (phase, stats) in [("update", &g.update), ("compute", &g.compute)] {
            imbalance.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.2}", stats[2].imbalance.mean),
            ]);
        }
    }
    emit(
        "Fig. 9(b): memory bandwidth utilization (simulated, GB/s)",
        "fig9b.txt",
        &table_b.render(),
    );
    emit(
        "Fig. 9(c): QPI utilization (simulated, % of peak)",
        "fig9c.txt",
        &table_c.render(),
    );
    emit(
        "Fig. 9 supplement: thread imbalance behind the update phase's low TLP",
        "fig9_imbalance.txt",
        &imbalance.render(),
    );
}

fn main() {
    saga_trace::init_from_env();
    match std::env::var("SAGA_PANEL").as_deref() {
        Ok("a") => panel_a(),
        Ok("b") | Ok("c") => panels_bc(),
        _ => {
            panel_a();
            panels_bc();
        }
    }
    finish_trace("fig9");
}
