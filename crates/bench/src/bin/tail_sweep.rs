//! Tail-mass sweep: where does the paper's AS ↔ DAH flip happen?
//!
//! §V-B's primary finding is that the best update structure flips with the
//! heaviness of the per-batch degree tail: AS wins short tails, DAH wins
//! heavy ones (Fig. 6b). At full scale the flip is driven by the hub's
//! serialized update work, `(hub edges per batch) × (hub degree)`, which
//! shrinks *quadratically* when the stream is scaled down — so a scaled
//! reproduction must ask where the crossover sits, not just whether two
//! fixed points land on either side. This sweep varies the in-hub mass of
//! a Wiki-like stream from 0 to 30% of each batch and reports the update
//! latency of all four structures, exposing the crossover directly.
//!
//! ```text
//! cargo run -p saga-bench --release --bin tail_sweep
//! ```

use saga_bench::{config_from_env, emit_table};
use saga_core::report::TextTable;
use saga_graph::{build_graph, DataStructureKind};
use saga_stream::{weight_for, Edge, Node};
use saga_stream::zipf::EndpointDist;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;
use rand_xoshiro::rand_core::SeedableRng;

const NODES: usize = 16_000;
const EDGES: usize = 120_000;
const BATCH: usize = 8_000;

/// Wiki-like stream with an explicit in-hub mass.
fn stream_with_hub_mass(mass: f64, seed: u64) -> Vec<Edge> {
    let out_dist = EndpointDist::zipf(NODES, 0.5, 0.0, seed ^ 0xA5A5);
    let in_dist = EndpointDist::zipf(NODES, 0.5, mass, seed ^ 0x5A5A);
    let mut rng = rand_xoshiro::Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..EDGES)
        .map(|_| {
            let src: Node = out_dist.sample(&mut rng);
            let dst: Node = in_dist.sample(&mut rng);
            Edge::new(src, dst, weight_for(src, dst))
        })
        .collect()
}

fn main() {
    let cfg = config_from_env();
    let pool = ThreadPool::new(cfg.threads);
    let mut table = TextTable::new([
        "hub mass", "batch max in", "AS ms", "AC ms", "Stinger ms", "DAH ms", "best",
    ]);
    for &mass in &[0.0, 0.01, 0.03, 0.06, 0.12, 0.20, 0.30] {
        eprintln!("[tail_sweep] hub mass {mass} ...");
        let edges = stream_with_hub_mass(mass, cfg.seed);
        let stats = saga_stream::batch_stats::degree_stats(&edges[..BATCH], NODES);
        let mut row = vec![
            format!("{:.0}%", mass * 100.0),
            stats.max_in.to_string(),
        ];
        let mut best = (f64::INFINITY, "-");
        for ds in DataStructureKind::ALL {
            let mut best_secs = f64::INFINITY;
            for _ in 0..cfg.repeats.max(1) {
                let graph = build_graph(ds, NODES, true, pool.threads());
                let sw = Stopwatch::start();
                for batch in edges.chunks(BATCH) {
                    graph.update_batch(batch, &pool);
                }
                best_secs = best_secs.min(sw.elapsed_secs());
            }
            row.push(format!("{:.2}", best_secs * 1e3));
            if best_secs < best.0 {
                best = (best_secs, ds.abbrev());
            }
        }
        row.push(best.1.to_string());
        table.add_row(row);
    }
    emit_table(
        "Tail sweep: update latency vs per-batch hub mass (the Fig. 6b flip)",
        "tail_sweep.txt",
        &table,
    );
}
