//! Tail-mass sweep: where does the paper's AS ↔ DAH flip happen?
//!
//! §V-B's primary finding is that the best update structure flips with the
//! heaviness of the per-batch degree tail: AS wins short tails, DAH wins
//! heavy ones (Fig. 6b). At full scale the flip is driven by the hub's
//! serialized update work, `(hub edges per batch) × (hub degree)`, which
//! shrinks *quadratically* when the stream is scaled down — so a scaled
//! reproduction must ask where the crossover sits, not just whether two
//! fixed points land on either side. This sweep varies the in-hub mass of
//! a Wiki-like stream from 0 to 30% of each batch and reports the update
//! latency of all four structures, exposing the crossover directly.
//!
//! ```text
//! cargo run -p saga-bench --release --bin tail_sweep
//! ```

use saga_bench::experiments::tail_sweep;
use saga_bench::{config_from_env, emit_table, finish_trace};
use saga_core::report::TextTable;
use saga_graph::DataStructureKind;
use saga_utils::parallel::ThreadPool;

const NODES: usize = 16_000;
const EDGES: usize = 120_000;
const BATCH: usize = 8_000;
const MASSES: [f64; 7] = [0.0, 0.01, 0.03, 0.06, 0.12, 0.20, 0.30];

fn main() {
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let pool = ThreadPool::new(cfg.threads);
    let mut table = TextTable::new([
        "hub mass",
        "batch max in",
        "AS ms",
        "AC ms",
        "Stinger ms",
        "DAH ms",
        "best",
        "AS p99 ms",
        "DAH p99 ms",
    ]);
    eprintln!("[tail_sweep] sweeping {} hub masses ...", MASSES.len());
    let points = tail_sweep(
        &MASSES,
        NODES,
        EDGES,
        BATCH,
        cfg.repeats,
        cfg.seed,
        &pool,
    );
    for p in &points {
        let mut row = vec![
            format!("{:.0}%", p.mass * 100.0),
            p.batch_max_in.to_string(),
        ];
        let mut best = (f64::INFINITY, "-");
        for ds in DataStructureKind::ALL {
            let ms = p.ms(ds);
            row.push(format!("{ms:.2}"));
            if ms < best.0 {
                best = (ms, ds.abbrev());
            }
        }
        row.push(best.1.to_string());
        // Per-batch p99 from the log-bucketed histograms: the tail view of
        // the same sweep, on the two structures the Fig. 6b flip is about.
        row.push(format!(
            "{:.2}",
            p.p99_ms(DataStructureKind::AdjacencyShared)
        ));
        row.push(format!("{:.2}", p.p99_ms(DataStructureKind::Dah)));
        table.add_row(row);
    }
    emit_table(
        "Tail sweep: update latency vs per-batch hub mass (the Fig. 6b flip)",
        "tail_sweep.txt",
        &table,
    );
    finish_trace("tail_sweep");
}
