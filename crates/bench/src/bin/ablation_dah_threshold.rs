//! Ablation: DAH low→high flush threshold. DAH's degree-awareness costs a
//! flush meta-operation each time a vertex crosses the threshold
//! (§III-A4); this sweep shows the update/traversal trade-off: a low
//! threshold flushes eagerly (more flushes, faster hub traversal through
//! dedicated tables), a high one keeps hubs clogging the shared Robin
//! Hood table.
//!
//! ```text
//! cargo run -p saga-bench --release --bin ablation_dah_threshold
//! ```

use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
};
use saga_bench::{config_from_env, emit};
use saga_core::report::{fmt_secs, TextTable};
use saga_graph::dah::Dah;
use saga_graph::DynamicGraph;
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

fn main() {
    let cfg = config_from_env();
    let pool = ThreadPool::new(cfg.threads);
    let mut table = TextTable::new([
        "Dataset", "flush threshold", "update s", "compute s (PR/INC)",
    ]);
    for profile in [DatasetProfile::livejournal(), DatasetProfile::talk()] {
        let profile = profile.scaled_by(cfg.scale);
        let stream = profile.generate(cfg.seed);
        for threshold in [4u32, 8, 16, 32, 64] {
            eprintln!(
                "[ablation_dah_threshold] {} @ threshold {threshold} ...",
                profile.name()
            );
            let graph = Dah::with_threshold(
                stream.num_nodes,
                stream.directed,
                pool.threads(),
                threshold,
            );
            let mut state = AlgorithmState::new(
                AlgorithmKind::PageRank,
                ComputeModelKind::Incremental,
                stream.num_nodes,
                AlgorithmParams::default(),
            );
            let mut tracker = AffectedTracker::new(stream.num_nodes);
            let mut update_s = 0.0;
            let mut compute_s = 0.0;
            for batch in stream.batches(stream.suggested_batch_size) {
                let sw = Stopwatch::start();
                graph.update_batch(batch, &pool);
                let impact = tracker.process_batch(&graph, batch, true, &pool);
                update_s += sw.elapsed_secs();
                let sw = Stopwatch::start();
                state.perform_alg(&graph, &impact.affected, &impact.new_vertices, &pool);
                compute_s += sw.elapsed_secs();
            }
            table.add_row([
                profile.name().to_string(),
                threshold.to_string(),
                fmt_secs(update_s),
                fmt_secs(compute_s),
            ]);
        }
    }
    emit(
        "Ablation: DAH low-to-high flush threshold (default: 16)",
        "ablation_dah_threshold.txt",
        &table.render(),
    );
}
