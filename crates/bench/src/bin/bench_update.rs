//! Update-phase ingestion benchmark: radix-partitioned `O(batch)` routing
//! versus the `O(batch × chunks)` rescan baseline on the chunk-owned
//! structures (AC, DAH), over a Talk-profile heavy-tailed batch.
//!
//! Emits `results/BENCH_update.json`.
//!
//! ```text
//! cargo run -p saga-bench --release --bin bench_update
//! ```

use saga_bench::{config_from_env, emit};
use saga_graph::adjacency_chunked::AdjacencyChunked;
use saga_graph::dah::Dah;
use saga_graph::{DynamicGraph, Edge};
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

const NODES: usize = 20_000;
const BATCH: usize = 20_000;
const REPS: usize = 5;
/// Chunks per worker. Oversubscribing chunks softens the hub-imbalance of
/// chunk ownership (more, smaller chunks per worker), and is exactly the
/// regime where rescan routing collapses: its cost is `O(batch × chunks)`
/// while the ingest work itself stays fixed.
const CHUNKS_PER_WORKER: usize = 16;

fn time_best<F: FnMut() -> f64>(mut run: F) -> f64 {
    (0..REPS).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn bench_pair(
    structure: &str,
    threads: usize,
    batch: &[Edge],
    build_run_rescan: &dyn Fn(&ThreadPool, &[Edge]) -> f64,
    build_run_partitioned: &dyn Fn(&ThreadPool, &[Edge]) -> f64,
) -> String {
    let pool = ThreadPool::new(threads);
    let rescan_s = time_best(|| build_run_rescan(&pool, batch));
    let partitioned_s = time_best(|| build_run_partitioned(&pool, batch));
    let speedup = rescan_s / partitioned_s;
    eprintln!(
        "[bench_update] {structure} @ {threads} threads: rescan {rescan_s:.6}s, \
         partitioned {partitioned_s:.6}s, speedup {speedup:.2}x"
    );
    format!(
        "    {{\"structure\": \"{structure}\", \"threads\": {threads}, \
         \"rescan_seconds\": {rescan_s:.6}, \"partitioned_seconds\": {partitioned_s:.6}, \
         \"speedup\": {speedup:.3}}}"
    )
}

fn main() {
    let cfg = config_from_env();
    let batch = DatasetProfile::talk()
        .scaled(NODES, BATCH)
        .generate(cfg.seed)
        .edges;

    let ac_rescan = |pool: &ThreadPool, batch: &[Edge]| {
        let g = AdjacencyChunked::new(NODES, true, pool.threads() * CHUNKS_PER_WORKER);
        let sw = Stopwatch::start();
        g.update_batch_rescan(batch, pool);
        sw.elapsed_secs()
    };
    let ac_partitioned = |pool: &ThreadPool, batch: &[Edge]| {
        let g = AdjacencyChunked::new(NODES, true, pool.threads() * CHUNKS_PER_WORKER);
        let sw = Stopwatch::start();
        g.update_batch(batch, pool);
        sw.elapsed_secs()
    };
    let dah_rescan = |pool: &ThreadPool, batch: &[Edge]| {
        let g = Dah::new(NODES, true, pool.threads() * CHUNKS_PER_WORKER);
        let sw = Stopwatch::start();
        g.update_batch_rescan(batch, pool);
        sw.elapsed_secs()
    };
    let dah_partitioned = |pool: &ThreadPool, batch: &[Edge]| {
        let g = Dah::new(NODES, true, pool.threads() * CHUNKS_PER_WORKER);
        let sw = Stopwatch::start();
        g.update_batch(batch, pool);
        sw.elapsed_secs()
    };

    let mut rows = Vec::new();
    for threads in [1usize, 4, 8] {
        rows.push(bench_pair("AC", threads, &batch, &ac_rescan, &ac_partitioned));
        rows.push(bench_pair("DAH", threads, &batch, &dah_rescan, &dah_partitioned));
    }

    let body = format!(
        "{{\n  \"benchmark\": \"update_ingest\",\n  \"profile\": \"talk\",\n  \
         \"nodes\": {NODES},\n  \"batch_edges\": {BATCH},\n  \"reps\": {REPS},\n  \"chunks_per_worker\": {CHUNKS_PER_WORKER},\n  \
         \"seed\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        rows.join(",\n")
    );
    emit(
        "Update-phase ingestion: partitioned vs rescan (heavy-tailed batch)",
        "BENCH_update.json",
        &body,
    );
}
