//! Runs the architecture-level characterization (§VI) once and emits
//! **Fig. 9(b)**, **Fig. 9(c)**, and **Fig. 10(a–c)** together — identical
//! output to the dedicated binaries at half the cost (the trace + replay
//! pass dominates).
//!
//! ```text
//! cargo run -p saga-bench --release --bin arch_suite
//! ```

use saga_bench::arch::{run_arch_characterization, PhaseStageStats};
use saga_bench::{algorithms_from_env, config_from_env, emit_table, env_or};
use saga_core::report::TextTable;

fn main() {
    let cfg = config_from_env();
    let algorithms = algorithms_from_env();
    let cache_scale = env_or("SAGA_CACHE_SCALE", 16usize);
    let results = run_arch_characterization(&cfg, &algorithms, cache_scale);

    let mut fig9b = TextTable::new(["Group", "Phase", "P1 GB/s", "P2 GB/s", "P3 GB/s"]);
    let mut fig9c = TextTable::new(["Group", "Phase", "P1 QPI%", "P2 QPI%", "P3 QPI%"]);
    let mut imbalance =
        TextTable::new(["Group", "Phase", "P3 imbalance (max/mean thread cycles)"]);
    let mut fig10a = TextTable::new([
        "Group", "Phase", "L2 hit P1", "L2 hit P2", "L2 hit P3", "LLC hit P1", "LLC hit P2",
        "LLC hit P3",
    ]);
    let mpki_headers = [
        "Group", "L2 MPKI P1", "L2 MPKI P2", "L2 MPKI P3", "LLC MPKI P1", "LLC MPKI P2",
        "LLC MPKI P3",
    ];
    let mut fig10b = TextTable::new(mpki_headers);
    let mut fig10c = TextTable::new(mpki_headers);

    for g in &results {
        for (phase, stats) in [("update", &g.update), ("compute", &g.compute)] {
            fig9b.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}", stats[0].dram_gbps.mean),
                format!("{:.1}", stats[1].dram_gbps.mean),
                format!("{:.1}", stats[2].dram_gbps.mean),
            ]);
            fig9c.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}%", stats[0].qpi_util.mean * 100.0),
                format!("{:.1}%", stats[1].qpi_util.mean * 100.0),
                format!("{:.1}%", stats[2].qpi_util.mean * 100.0),
            ]);
            imbalance.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.2}", stats[2].imbalance.mean),
            ]);
            fig10a.add_row([
                g.name.to_string(),
                phase.to_string(),
                format!("{:.1}%", stats[0].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[1].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[2].l2_hit.mean * 100.0),
                format!("{:.1}%", stats[0].llc_hit.mean * 100.0),
                format!("{:.1}%", stats[1].llc_hit.mean * 100.0),
                format!("{:.1}%", stats[2].llc_hit.mean * 100.0),
            ]);
        }
        let mpki_row = |stats: &[PhaseStageStats; 3]| {
            [
                g.name.to_string(),
                format!("{:.1}", stats[0].l2_mpki.mean),
                format!("{:.1}", stats[1].l2_mpki.mean),
                format!("{:.1}", stats[2].l2_mpki.mean),
                format!("{:.1}", stats[0].llc_mpki.mean),
                format!("{:.1}", stats[1].llc_mpki.mean),
                format!("{:.1}", stats[2].llc_mpki.mean),
            ]
        };
        fig10b.add_row(mpki_row(&g.update));
        fig10c.add_row(mpki_row(&g.compute));
    }

    emit_table(
        "Fig. 9(b): memory bandwidth utilization (simulated, GB/s)",
        "fig9b.txt",
        &fig9b,
    );
    emit_table(
        "Fig. 9(c): QPI utilization (simulated, % of peak)",
        "fig9c.txt",
        &fig9c,
    );
    emit_table(
        "Fig. 9 supplement: thread imbalance behind the update phase's low TLP",
        "fig9_imbalance.txt",
        &imbalance,
    );
    emit_table(
        "Fig. 10(a): private L2 and shared LLC hit ratios (simulated)",
        "fig10a.txt",
        &fig10a,
    );
    emit_table(
        "Fig. 10(b): update-phase L2/LLC MPKI (simulated)",
        "fig10b.txt",
        &fig10b,
    );
    emit_table(
        "Fig. 10(c): compute-phase L2/LLC MPKI (simulated)",
        "fig10c.txt",
        &fig10c,
    );
}
