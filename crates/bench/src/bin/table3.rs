//! Regenerates **Table III**: for every algorithm × dataset, the best
//! (data structure × compute model) combination at P1/P2/P3 with its
//! absolute batch processing latency, comparing all 8 combinations with
//! 95% confidence intervals exactly as the paper's caption describes.
//!
//! ```text
//! cargo run -p saga-bench --release --bin table3
//! # quicker: SAGA_SCALE=0.25 SAGA_REPEATS=2 cargo run -p saga-bench --release --bin table3
//! ```

use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit};
use saga_core::experiment::{best_at, sweep_combinations, Metric};
use saga_core::report::{fmt_secs, TextTable};
use saga_core::stages::Stage;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Alg", "Dataset", "P1 best", "P1 s", "P2 best", "P2 s", "P3 best", "P3 s",
    ]);
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[table3] sweeping {alg} x {} ...", profile.name());
            let results = sweep_combinations(&profile, alg, &cfg);
            let mut row = vec![alg.to_string(), profile.name().to_string()];
            for stage in Stage::ALL {
                let best = best_at(&results, stage, Metric::Batch);
                row.push(best.notation());
                row.push(fmt_secs(best.best_mean));
            }
            table.add_row(row);
        }
    }
    emit(
        "Table III: best data structure + compute model per algorithm/dataset/stage",
        "table3.txt",
        &table.render(),
    );
}
