//! Regenerates **Fig. 7**: compute latency of FS normalized to INC at the
//! best data structure, over P1/P2/P3, for every algorithm and dataset —
//! the "larger graphs benefit more from the incremental model" result.
//!
//! (The paper plots BFS, CC, PR, SSSP, SSWP; MC is discussed in footnote 7
//! as the exception. All six are emitted here.)
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig7
//! ```

use saga_bench::experiments::fs_over_inc;
use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit, finish_trace};
use saga_core::report::{fmt_ratio, TextTable};

fn main() {
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Alg", "Dataset", "DS", "FS/INC P1", "FS/INC P2", "FS/INC P3",
    ]);
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig7] sweeping {alg} x {} ...", profile.name());
            let row = fs_over_inc(&profile, alg, &cfg);
            table.add_row([
                alg.to_string(),
                profile.name().to_string(),
                row.best_ds.to_string(),
                fmt_ratio(row.fs_over_inc[0]),
                fmt_ratio(row.fs_over_inc[1]),
                fmt_ratio(row.fs_over_inc[2]),
            ]);
        }
    }
    emit(
        "Fig. 7: FS compute latency normalized to INC (best data structure)",
        "fig7.txt",
        &table.render(),
    );
    finish_trace("fig7");
}
