//! Regenerates **Fig. 7**: compute latency of FS normalized to INC at the
//! best data structure, over P1/P2/P3, for every algorithm and dataset —
//! the "larger graphs benefit more from the incremental model" result.
//!
//! (The paper plots BFS, CC, PR, SSSP, SSWP; MC is discussed in footnote 7
//! as the exception. All six are emitted here.)
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig7
//! ```

use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit};
use saga_core::experiment::{best_at, sweep_combinations, Metric};
use saga_core::report::{fmt_ratio, TextTable};
use saga_core::stages::Stage;
use saga_algorithms::ComputeModelKind;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Alg", "Dataset", "DS", "FS/INC P1", "FS/INC P2", "FS/INC P3",
    ]);
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig7] sweeping {alg} x {} ...", profile.name());
            let results = sweep_combinations(&profile, alg, &cfg);
            // Isolate the compute model at the best data structure.
            let best_ds = best_at(&results, Stage::P3, Metric::Batch).best.0;
            let compute_of = |cm: ComputeModelKind, stage: Stage| {
                results
                    .iter()
                    .find(|r| r.ds == best_ds && r.cm == cm)
                    .map(|r| r.summary(stage, Metric::Compute).mean)
                    .unwrap_or(f64::NAN)
            };
            let mut row = vec![
                alg.to_string(),
                profile.name().to_string(),
                best_ds.to_string(),
            ];
            for stage in Stage::ALL {
                let fs = compute_of(ComputeModelKind::FromScratch, stage);
                let inc = compute_of(ComputeModelKind::Incremental, stage);
                row.push(fmt_ratio(fs / inc));
            }
            table.add_row(row);
        }
    }
    emit(
        "Fig. 7: FS compute latency normalized to INC (best data structure)",
        "fig7.txt",
        &table.render(),
    );
}
