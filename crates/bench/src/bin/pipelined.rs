//! Extension experiment: interleaved vs pipelined execution.
//!
//! The paper's §VI-A observation — the update phase underutilizes the
//! machine while compute saturates it — "opens opportunities for
//! inter-phase optimizations ... the slack in resource utilization in one
//! phase could be leveraged to optimize the other". This bench quantifies
//! the simplest such optimization, the snapshot-based update ∥ compute
//! pipeline of `saga_core::pipelined` (the execution model of Aspen /
//! GraphOne, footnote 1), against the paper's interleaved model.
//!
//! ```text
//! cargo run -p saga-bench --release --bin pipelined
//! ```

use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_bench::{config_from_env, datasets_from_env, emit, finish_trace};
use saga_core::driver::StreamDriver;
use saga_core::pipelined::run_pipelined;
use saga_core::report::{fmt_ratio, fmt_secs, TextTable};
use saga_graph::DataStructureKind;

fn main() {
    // With SAGA_TRACE=1 the whole run is captured as spans — per-worker
    // `task` tracks, main-thread `compute` spans, and the pipeline's
    // virtual `update-stage` track — and exported to
    // results/pipelined.trace.json, where the update/compute overlap of
    // Fig. 9's model is directly visible.
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Dataset",
        "interleaved s",
        "pipelined s",
        "wall speedup",
        "overlap speedup (modeled)",
    ]);
    for profile in datasets_from_env() {
        let profile = profile.scaled_by(cfg.scale);
        let stream = profile.generate(cfg.seed);
        let ds = if profile.is_heavy_tailed() {
            DataStructureKind::Dah
        } else {
            DataStructureKind::AdjacencyShared
        };
        eprintln!("[pipelined] {} on {} ...", profile.name(), ds.abbrev());
        let mut interleaved = StreamDriver::builder(ds, stream.num_nodes)
            .algorithm(AlgorithmKind::PageRank)
            .compute_model(ComputeModelKind::Incremental)
            .threads(cfg.threads)
            .build();
        let serial = interleaved.run(&stream);
        let serial_secs = serial.total_seconds();

        let update_threads = (cfg.threads / 2).max(1);
        let compute_threads = (cfg.threads - update_threads).max(1);
        let pipelined = run_pipelined(
            &stream,
            ds,
            AlgorithmKind::PageRank,
            stream.suggested_batch_size,
            update_threads,
            compute_threads,
        );
        // PageRank sums floats in neighbor-iteration order, which differs
        // between the live structure and the sorted CSR snapshot; compare
        // within numerical tolerance rather than bit-for-bit.
        if let (saga_algorithms::VertexValues::F64(a), saga_algorithms::VertexValues::F64(b)) =
            (&serial.final_values, &pipelined.final_values)
        {
            let max_diff = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            // Both runs stop propagating below the INC trigger epsilon
            // (1e-7), whose residual is amplified by up to in-degree/(1-d)
            // on hub-heavy graphs; 1e-4 comfortably bounds that while
            // still catching real divergence.
            assert!(
                max_diff < 1e-4,
                "pipelining changed PageRank results (max diff {max_diff})"
            );
        }
        table.add_row([
            profile.name().to_string(),
            fmt_secs(serial_secs),
            fmt_secs(pipelined.pipelined_seconds()),
            fmt_ratio(serial_secs / pipelined.pipelined_seconds()),
            fmt_ratio(pipelined.overlap_speedup()),
        ]);
    }
    emit(
        "Extension: interleaved vs pipelined (update || compute) execution",
        "pipelined.txt",
        &table.render(),
    );
    finish_trace("pipelined");
}
