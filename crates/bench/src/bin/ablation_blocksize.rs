//! Ablation: Stinger edge-block size. The paper fixes 16 edges per block
//! (§III-A3); this sweep shows the trade-off that choice sits on — small
//! blocks mean more pointer chasing per traversal, large blocks mean
//! longer scans per insert and coarser locks (less intra-node
//! parallelism).
//!
//! ```text
//! cargo run -p saga-bench --release --bin ablation_blocksize
//! ```

use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
};
use saga_bench::{config_from_env, emit};
use saga_core::report::{fmt_secs, TextTable};
use saga_graph::stinger::Stinger;
use saga_graph::DynamicGraph;
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

fn main() {
    let cfg = config_from_env();
    let pool = ThreadPool::new(cfg.threads);
    let mut table = TextTable::new([
        "Dataset", "block size", "update s", "compute s (PR/INC)",
    ]);
    for profile in [DatasetProfile::livejournal(), DatasetProfile::talk()] {
        let profile = profile.scaled_by(cfg.scale);
        let stream = profile.generate(cfg.seed);
        for block_size in [4usize, 8, 16, 32, 64] {
            eprintln!(
                "[ablation_blocksize] {} @ block {block_size} ...",
                profile.name()
            );
            let graph = Stinger::with_block_size(stream.num_nodes, stream.directed, block_size);
            let mut state = AlgorithmState::new(
                AlgorithmKind::PageRank,
                ComputeModelKind::Incremental,
                stream.num_nodes,
                AlgorithmParams::default(),
            );
            let mut tracker = AffectedTracker::new(stream.num_nodes);
            let mut update_s = 0.0;
            let mut compute_s = 0.0;
            for batch in stream.batches(stream.suggested_batch_size) {
                let sw = Stopwatch::start();
                graph.update_batch(batch, &pool);
                let impact = tracker.process_batch(&graph, batch, true, &pool);
                update_s += sw.elapsed_secs();
                let sw = Stopwatch::start();
                state.perform_alg(&graph, &impact.affected, &impact.new_vertices, &pool);
                compute_s += sw.elapsed_secs();
            }
            table.add_row([
                profile.name().to_string(),
                block_size.to_string(),
                fmt_secs(update_s),
                fmt_secs(compute_s),
            ]);
        }
    }
    emit(
        "Ablation: Stinger edge-block size (paper default: 16)",
        "ablation_blocksize.txt",
        &table.render(),
    );
}
