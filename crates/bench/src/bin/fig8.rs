//! Regenerates **Fig. 8**: the percentage of batch processing latency
//! spent in the update phase over P1/P2/P3, at the best combination of
//! data structure and compute model — the "update is at least 40% of the
//! latency" result.
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig8
//! ```

use saga_bench::experiments::update_share;
use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit, finish_trace};
use saga_core::report::{fmt_pct, TextTable};

fn main() {
    saga_trace::init_from_env();
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Alg", "Dataset", "Best combo", "update% P1", "update% P2", "update% P3",
    ]);
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig8] sweeping {alg} x {} ...", profile.name());
            let row = update_share(&profile, alg, &cfg);
            table.add_row([
                alg.to_string(),
                profile.name().to_string(),
                format!("{}+{}", row.best.1, row.best.0),
                fmt_pct(row.share[0]),
                fmt_pct(row.share[1]),
                fmt_pct(row.share[2]),
            ]);
        }
    }
    emit(
        "Fig. 8: % of batch processing latency in the update phase (best combination)",
        "fig8.txt",
        &table.render(),
    );
    finish_trace("fig8");
}
