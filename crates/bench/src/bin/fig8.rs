//! Regenerates **Fig. 8**: the percentage of batch processing latency
//! spent in the update phase over P1/P2/P3, at the best combination of
//! data structure and compute model — the "update is at least 40% of the
//! latency" result.
//!
//! ```text
//! cargo run -p saga-bench --release --bin fig8
//! ```

use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit};
use saga_core::experiment::{best_at, sweep_combinations, Metric};
use saga_core::report::{fmt_pct, TextTable};
use saga_core::stages::Stage;

fn main() {
    let cfg = config_from_env();
    let mut table = TextTable::new([
        "Alg", "Dataset", "Best combo", "update% P1", "update% P2", "update% P3",
    ]);
    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[fig8] sweeping {alg} x {} ...", profile.name());
            let results = sweep_combinations(&profile, alg, &cfg);
            let best = best_at(&results, Stage::P3, Metric::Batch).best;
            let combo = results
                .iter()
                .find(|r| (r.ds, r.cm) == best)
                .expect("best combination exists");
            let mut row = vec![
                alg.to_string(),
                profile.name().to_string(),
                format!("{}+{}", best.1, best.0),
            ];
            for stage in Stage::ALL {
                row.push(fmt_pct(combo.stages[stage.index()].update_fraction()));
            }
            table.add_row(row);
        }
    }
    emit(
        "Fig. 8: % of batch processing latency in the update phase (best combination)",
        "fig8.txt",
        &table.render(),
    );
}
