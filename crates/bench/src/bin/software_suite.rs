//! Runs the complete software-level characterization (§V) in one pass:
//! each (algorithm × dataset) sweep of all 8 combinations is executed once
//! and re-used to emit **Table III**, **Fig. 6(a–c)**, **Fig. 7**, and
//! **Fig. 8** together — identical output to running the four dedicated
//! binaries, at a quarter of the cost.
//!
//! ```text
//! cargo run -p saga-bench --release --bin software_suite
//! ```

use saga_algorithms::ComputeModelKind;
use saga_bench::{algorithms_from_env, config_from_env, datasets_from_env, emit};
use saga_core::experiment::{best_at, normalized_to, sweep_combinations, Metric};
use saga_core::report::{fmt_pct, fmt_ratio, fmt_secs, TextTable};
use saga_core::stages::Stage;
use saga_graph::DataStructureKind;

fn main() {
    let cfg = config_from_env();
    let mut table3 = TextTable::new([
        "Alg", "Dataset", "P1 best", "P1 s", "P2 best", "P2 s", "P3 best", "P3 s",
    ]);
    let fig6_headers = ["Alg", "Dataset", "CM", "AC/AS", "DAH/AS", "Stinger/AS"];
    let mut fig6 = [
        TextTable::new(fig6_headers),
        TextTable::new(fig6_headers),
        TextTable::new(fig6_headers),
    ];
    let mut fig7 = TextTable::new([
        "Alg", "Dataset", "DS", "FS/INC P1", "FS/INC P2", "FS/INC P3",
    ]);
    let mut fig8 = TextTable::new([
        "Alg", "Dataset", "Best combo", "update% P1", "update% P2", "update% P3",
    ]);

    for alg in algorithms_from_env() {
        for profile in datasets_from_env() {
            eprintln!("[software_suite] sweeping {alg} x {} ...", profile.name());
            let results = sweep_combinations(&profile, alg, &cfg);

            // ---- Table III ----
            let mut row = vec![alg.to_string(), profile.name().to_string()];
            for stage in Stage::ALL {
                let best = best_at(&results, stage, Metric::Batch);
                row.push(best.notation());
                row.push(fmt_secs(best.best_mean));
            }
            table3.add_row(row);

            // ---- Fig. 6 ----
            let p3_best = best_at(&results, Stage::P3, Metric::Batch).best;
            let best_cm = p3_best.1;
            for (t, metric) in fig6
                .iter_mut()
                .zip([Metric::Batch, Metric::Update, Metric::Compute])
            {
                let norm = normalized_to(
                    &results,
                    DataStructureKind::AdjacencyShared,
                    best_cm,
                    Stage::P3,
                    metric,
                );
                let of = |ds: DataStructureKind| {
                    norm.iter()
                        .find(|(d, _)| *d == ds)
                        .map(|&(_, r)| fmt_ratio(r))
                        .unwrap_or_else(|| "-".into())
                };
                t.add_row([
                    alg.to_string(),
                    profile.name().to_string(),
                    best_cm.to_string(),
                    of(DataStructureKind::AdjacencyChunked),
                    of(DataStructureKind::Dah),
                    of(DataStructureKind::Stinger),
                ]);
            }

            // ---- Fig. 7 ----
            let best_ds = p3_best.0;
            let compute_of = |cm: ComputeModelKind, stage: Stage| {
                results
                    .iter()
                    .find(|r| r.ds == best_ds && r.cm == cm)
                    .map(|r| r.summary(stage, Metric::Compute).mean)
                    .unwrap_or(f64::NAN)
            };
            let mut row = vec![
                alg.to_string(),
                profile.name().to_string(),
                best_ds.to_string(),
            ];
            for stage in Stage::ALL {
                let fs = compute_of(ComputeModelKind::FromScratch, stage);
                let inc = compute_of(ComputeModelKind::Incremental, stage);
                row.push(fmt_ratio(fs / inc));
            }
            fig7.add_row(row);

            // ---- Fig. 8 ----
            let combo = results
                .iter()
                .find(|r| (r.ds, r.cm) == p3_best)
                .expect("best combination exists");
            let mut row = vec![
                alg.to_string(),
                profile.name().to_string(),
                format!("{}+{}", p3_best.1, p3_best.0),
            ];
            for stage in Stage::ALL {
                row.push(fmt_pct(combo.stages[stage.index()].update_fraction()));
            }
            fig8.add_row(row);
        }
    }

    emit(
        "Table III: best data structure + compute model per algorithm/dataset/stage",
        "table3.txt",
        &table3.render(),
    );
    emit(
        "Fig. 6(a): P3 batch processing latency normalized to AS",
        "fig6a.txt",
        &fig6[0].render(),
    );
    emit(
        "Fig. 6(b): P3 update latency normalized to AS",
        "fig6b.txt",
        &fig6[1].render(),
    );
    emit(
        "Fig. 6(c): P3 compute latency normalized to AS",
        "fig6c.txt",
        &fig6[2].render(),
    );
    emit(
        "Fig. 7: FS compute latency normalized to INC (best data structure)",
        "fig7.txt",
        &fig7.render(),
    );
    emit(
        "Fig. 8: % of batch processing latency in the update phase (best combination)",
        "fig8.txt",
        &fig8.render(),
    );
}
