//! Shared machinery for the architecture-level experiments (Figs. 9–10).
//!
//! §VI of the paper groups results into *STail* (short-tailed LJ, Orkut,
//! RMAT on their best structure, AS) and *HTail* (heavy-tailed Wiki, Talk
//! on DAH), always under the incremental compute model, averaged across
//! the algorithms. This module runs those configurations once with the
//! `saga-perf` simulator attached and aggregates per-phase, per-stage
//! statistics that `fig9` and `fig10` both report.

use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_core::driver::{ArchSimConfig, StreamDriver};
use saga_core::experiment::ExperimentConfig;
use saga_core::stages::stage_of;
use saga_graph::DataStructureKind;
use saga_stream::profiles::DatasetProfile;
use saga_utils::stats::Summary;

/// One of the paper's §VI dataset groups.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Group name (STail / HTail).
    pub name: &'static str,
    /// Member datasets with their group-best data structure.
    pub members: Vec<(DatasetProfile, DataStructureKind)>,
}

/// The paper's two groups: STail = {LJ, Orkut, RMAT} on AS, HTail =
/// {Wiki, Talk} on DAH (§VI preamble).
pub fn groups() -> Vec<GroupSpec> {
    vec![
        GroupSpec {
            name: "STail",
            members: DatasetProfile::short_tailed()
                .into_iter()
                .map(|p| (p, DataStructureKind::AdjacencyShared))
                .collect(),
        },
        GroupSpec {
            name: "HTail",
            members: DatasetProfile::heavy_tailed()
                .into_iter()
                .map(|p| (p, DataStructureKind::Dah))
                .collect(),
        },
    ]
}

/// Raw per-batch samples of one phase within one stage bucket.
#[derive(Debug, Clone, Default)]
struct PhaseSamples {
    dram_gbps: Vec<f64>,
    qpi_util: Vec<f64>,
    l2_hit: Vec<f64>,
    llc_hit: Vec<f64>,
    l2_mpki: Vec<f64>,
    llc_mpki: Vec<f64>,
    imbalance: Vec<f64>,
}

/// Aggregated statistics of one phase within one stage.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStageStats {
    /// Modeled DRAM bandwidth (GB/s).
    pub dram_gbps: Summary,
    /// Modeled QPI utilization (fraction of peak).
    pub qpi_util: Summary,
    /// Private L2 hit ratio.
    pub l2_hit: Summary,
    /// Shared LLC hit ratio.
    pub llc_hit: Summary,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: Summary,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: Summary,
    /// Max-thread/mean-thread cycle imbalance.
    pub imbalance: Summary,
}

impl PhaseSamples {
    fn summarize(&self) -> PhaseStageStats {
        PhaseStageStats {
            dram_gbps: Summary::from_samples(&self.dram_gbps),
            qpi_util: Summary::from_samples(&self.qpi_util),
            l2_hit: Summary::from_samples(&self.l2_hit),
            llc_hit: Summary::from_samples(&self.llc_hit),
            l2_mpki: Summary::from_samples(&self.l2_mpki),
            llc_mpki: Summary::from_samples(&self.llc_mpki),
            imbalance: Summary::from_samples(&self.imbalance),
        }
    }
}

/// Per-group, per-stage, per-phase characterization.
#[derive(Debug)]
pub struct GroupArchResult {
    /// Group name.
    pub name: &'static str,
    /// `update[stage]` / `compute[stage]`.
    pub update: [PhaseStageStats; 3],
    /// Compute-phase statistics per stage.
    pub compute: [PhaseStageStats; 3],
}

/// Runs the §VI configuration (INC on the group's best structure) for
/// every group/dataset/algorithm and aggregates per-phase statistics.
pub fn run_arch_characterization(
    cfg: &ExperimentConfig,
    algorithms: &[AlgorithmKind],
    cache_scale: usize,
) -> Vec<GroupArchResult> {
    let mut out = Vec::new();
    for group in groups() {
        let mut update: [PhaseSamples; 3] = Default::default();
        let mut compute: [PhaseSamples; 3] = Default::default();
        for (profile, ds) in &group.members {
            let profile = profile.clone().scaled_by(cfg.scale);
            let stream = profile.generate(cfg.seed);
            for &alg in algorithms {
                saga_trace::progress!(
                    "[arch] {} / {} / {} (tracing + replay)...",
                    group.name,
                    profile.name(),
                    alg
                );
                let mut driver = StreamDriver::builder(*ds, stream.num_nodes)
                    .algorithm(alg)
                    .compute_model(ComputeModelKind::Incremental)
                    .threads(cfg.threads)
                    .arch_sim(ArchSimConfig {
                        cache_scale,
                        ..ArchSimConfig::default()
                    })
                    .build();
                let outcome = driver.run(&stream);
                let total = outcome.batches.len();
                for batch in &outcome.batches {
                    let s = stage_of(batch.index, total).index();
                    let arch = batch.arch.as_ref().expect("arch sim enabled");
                    let push = |bucket: &mut PhaseSamples,
                                report: &saga_perf::cache::CacheReport,
                                bw: &saga_perf::bandwidth::BandwidthEstimate| {
                        bucket.dram_gbps.push(bw.dram_gbps / 1e9);
                        bucket.qpi_util.push(bw.qpi_utilization);
                        bucket.l2_hit.push(report.l2_hit_ratio());
                        bucket.llc_hit.push(report.llc_hit_ratio());
                        bucket.l2_mpki.push(report.l2_mpki());
                        bucket.llc_mpki.push(report.llc_mpki());
                        bucket.imbalance.push(bw.imbalance);
                    };
                    push(&mut update[s], &arch.update, &arch.update_bw);
                    push(&mut compute[s], &arch.compute, &arch.compute_bw);
                }
            }
        }
        out.push(GroupArchResult {
            name: group.name,
            update: [
                update[0].summarize(),
                update[1].summarize(),
                update[2].summarize(),
            ],
            compute: [
                compute[0].summarize(),
                compute[1].summarize(),
                compute[2].summarize(),
            ],
        });
    }
    out
}

/// Stage label helper for the report rows.
pub fn stage_label(i: usize) -> &'static str {
    match i {
        0 => "P1",
        1 => "P2",
        _ => "P3",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_section_vi() {
        let gs = groups();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].name, "STail");
        assert_eq!(gs[0].members.len(), 3);
        assert!(gs[0]
            .members
            .iter()
            .all(|(_, ds)| *ds == DataStructureKind::AdjacencyShared));
        assert_eq!(gs[1].name, "HTail");
        assert_eq!(gs[1].members.len(), 2);
        assert!(gs[1].members.iter().all(|(_, ds)| *ds == DataStructureKind::Dah));
    }

    #[test]
    fn stage_labels() {
        assert_eq!(stage_label(0), "P1");
        assert_eq!(stage_label(2), "P3");
    }
}
