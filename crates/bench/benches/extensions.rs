//! Criterion micro-benchmarks for the suite's extension features:
//! deletion throughput, snapshot-store ingest and historical queries,
//! update ∥ compute pipelining, the SNAP loader, and the two FS BFS
//! kernels (classic push vs direction-optimizing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saga_algorithms::bfs::{bfs_direction_optimizing, bfs_from_scratch, BfsProgram};
use saga_algorithms::fs::reset_values;
use saga_algorithms::AlgorithmKind;
use saga_core::pipelined::run_pipelined;
use saga_graph::properties::AtomicU32Array;
use saga_graph::snapshots::SnapshotStore;
use saga_graph::{build_deletable_graph, build_graph, DataStructureKind, GraphTopology};
use saga_stream::loader::read_edge_list;
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;

const NODES: usize = 10_000;
const EDGES: usize = 60_000;

fn stream() -> saga_stream::EdgeStream {
    DatasetProfile::livejournal().scaled(NODES, EDGES).generate(21)
}

fn bench_deletions(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let edges = stream().edges;
    let mut group = c.benchmark_group("delete_batch");
    group.sample_size(10);
    for ds in DataStructureKind::ALL {
        group.bench_function(BenchmarkId::new(ds.abbrev(), "half"), |b| {
            b.iter_with_setup(
                || {
                    let g = build_deletable_graph(ds, NODES, true, pool.threads());
                    g.update_batch(&edges, &pool);
                    g
                },
                |g| {
                    g.delete_batch(&edges[..EDGES / 2], &pool);
                    g
                },
            );
        });
    }
    group.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let edges = stream().edges;
    let mut group = c.benchmark_group("snapshot_store");
    group.sample_size(10);
    group.bench_function("ingest_10_batches", |b| {
        b.iter(|| {
            let mut store = SnapshotStore::new(NODES, true);
            for batch in edges.chunks(EDGES / 10) {
                store.ingest_batch(batch);
            }
            store
        });
    });
    let mut store = SnapshotStore::new(NODES, true);
    for batch in edges.chunks(EDGES / 10) {
        store.ingest_batch(batch);
    }
    group.bench_function("historical_degree_scan", |b| {
        let view = store.snapshot(4); // mid-history version
        b.iter(|| {
            let mut sum = 0usize;
            for v in 0..NODES as u32 {
                sum += view.out_degree(v);
            }
            sum
        });
    });
    group.finish();
}

fn bench_pipelined(c: &mut Criterion) {
    let s = stream();
    let mut group = c.benchmark_group("pipelined_vs_interleaved");
    group.sample_size(10);
    group.bench_function("pipelined_cc", |b| {
        b.iter(|| {
            run_pipelined(
                &s,
                DataStructureKind::AdjacencyShared,
                AlgorithmKind::Cc,
                EDGES / 5,
                2,
                2,
            )
        });
    });
    group.finish();
}

fn bench_loader(c: &mut Criterion) {
    let edges = stream().edges;
    let mut body = String::with_capacity(edges.len() * 12);
    body.push_str("# benchmark edge list\n");
    for e in &edges {
        body.push_str(&format!("{}\t{}\n", e.src, e.dst));
    }
    let mut group = c.benchmark_group("loader");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(body.len() as u64));
    group.bench_function("read_edge_list", |b| {
        b.iter(|| read_edge_list(body.as_bytes()).unwrap());
    });
    group.finish();
}

fn bench_bfs_kernels(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let s = stream();
    let graph = build_graph(DataStructureKind::AdjacencyShared, NODES, true, pool.threads());
    graph.update_batch(&s.edges, &pool);
    let program = BfsProgram::new(s.edges[0].src);
    let mut group = c.benchmark_group("bfs_kernel");
    group.sample_size(10);
    group.bench_function("classic_push", |b| {
        b.iter_with_setup(
            || {
                let v = AtomicU32Array::filled(NODES, 0);
                reset_values(&program, &v, NODES, &pool);
                v
            },
            |v| {
                bfs_from_scratch(&program, graph.as_ref(), &v, &pool);
                v
            },
        );
    });
    group.bench_function("direction_optimizing", |b| {
        b.iter_with_setup(
            || {
                let v = AtomicU32Array::filled(NODES, 0);
                reset_values(&program, &v, NODES, &pool);
                v
            },
            |v| {
                bfs_direction_optimizing(&program, graph.as_ref(), &v, &pool);
                v
            },
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_deletions,
    bench_snapshots,
    bench_pipelined,
    bench_loader,
    bench_bfs_kernels
);
criterion_main!(benches);
