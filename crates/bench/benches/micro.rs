//! Criterion micro-benchmarks for the suite's hot paths.
//!
//! These complement the table/figure binaries: where those reproduce the
//! paper's end-to-end results, these isolate the primitive costs the paper
//! reasons about — per-structure batch update under short- vs heavy-tailed
//! batches, neighbor traversal, compute kernels, and the cache simulator's
//! replay throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
};
use saga_graph::{build_graph, DataStructureKind};
use saga_perf::cache::{HierarchyConfig, MemoryHierarchy};
use saga_perf::trace_phase;
use saga_stream::profiles::DatasetProfile;
use saga_utils::parallel::ThreadPool;

const NODES: usize = 20_000;
const BATCH: usize = 20_000;

fn short_tail_batch() -> Vec<saga_graph::Edge> {
    DatasetProfile::livejournal()
        .scaled(NODES, BATCH)
        .generate(11)
        .edges
}

fn heavy_tail_batch() -> Vec<saga_graph::Edge> {
    DatasetProfile::talk().scaled(NODES, BATCH).generate(11).edges
}

fn bench_update(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let mut group = c.benchmark_group("update_batch");
    group.sample_size(10);
    for (tail, batch) in [("short", short_tail_batch()), ("heavy", heavy_tail_batch())] {
        for ds in DataStructureKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(ds.abbrev(), tail),
                &batch,
                |b, batch| {
                    b.iter_with_setup(
                        || build_graph(ds, NODES, true, pool.threads()),
                        |graph| {
                            graph.update_batch(batch, &pool);
                            graph
                        },
                    );
                },
            );
        }
    }
    group.finish();
}

/// The tentpole comparison: partitioned `O(batch)` routing versus the
/// `O(batch × chunks)` rescan baseline, on the chunk-owned structures, for
/// a heavy-tailed (Talk-profile) batch across thread counts.
fn bench_update_ingest(c: &mut Criterion) {
    use saga_graph::adjacency_chunked::AdjacencyChunked;
    use saga_graph::dah::Dah;
    use saga_graph::DynamicGraph;

    let batch = heavy_tail_batch();
    let mut group = c.benchmark_group("update_ingest");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("AC_rescan", threads),
            &batch,
            |b, batch| {
                b.iter_with_setup(
                    || AdjacencyChunked::new(NODES, true, pool.threads()),
                    |graph| {
                        graph.update_batch_rescan(batch, &pool);
                        graph
                    },
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("AC_partitioned", threads),
            &batch,
            |b, batch| {
                b.iter_with_setup(
                    || AdjacencyChunked::new(NODES, true, pool.threads()),
                    |graph| {
                        graph.update_batch(batch, &pool);
                        graph
                    },
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("DAH_rescan", threads),
            &batch,
            |b, batch| {
                b.iter_with_setup(
                    || Dah::new(NODES, true, pool.threads()),
                    |graph| {
                        graph.update_batch_rescan(batch, &pool);
                        graph
                    },
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("DAH_partitioned", threads),
            &batch,
            |b, batch| {
                b.iter_with_setup(
                    || Dah::new(NODES, true, pool.threads()),
                    |graph| {
                        graph.update_batch(batch, &pool);
                        graph
                    },
                );
            },
        );
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let batch = short_tail_batch();
    let mut group = c.benchmark_group("traversal");
    group.sample_size(10);
    for ds in DataStructureKind::ALL {
        let graph = build_graph(ds, NODES, true, pool.threads());
        graph.update_batch(&batch, &pool);
        group.bench_function(ds.abbrev(), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                for v in 0..NODES as u32 {
                    graph.for_each_out_neighbor(v, &mut |nb, _| sum += nb as u64);
                }
                sum
            });
        });
    }
    group.finish();
}

fn bench_compute(c: &mut Criterion) {
    let pool = ThreadPool::new(4);
    let batch = short_tail_batch();
    let graph = build_graph(DataStructureKind::AdjacencyShared, NODES, true, pool.threads());
    graph.update_batch(&batch, &pool);
    let mut tracker = AffectedTracker::new(NODES);
    let impact = tracker.process_batch(graph.as_ref(), &batch, true, &pool);

    let mut group = c.benchmark_group("compute");
    group.sample_size(10);
    for alg in [AlgorithmKind::Bfs, AlgorithmKind::PageRank, AlgorithmKind::Cc] {
        for cm in ComputeModelKind::ALL {
            group.bench_function(format!("{alg}_{cm}"), |b| {
                b.iter_with_setup(
                    || AlgorithmState::new(alg, cm, NODES, AlgorithmParams::default()),
                    |mut state| {
                        state.perform_alg(
                            graph.as_ref(),
                            &impact.affected,
                            &impact.new_vertices,
                            &pool,
                        );
                        state
                    },
                );
            });
        }
    }
    group.finish();
}

/// Guards the DAH probe-loop hoist: the low-degree Robin Hood table wraps
/// with a hoisted power-of-two mask instead of a per-slot `%`, and this
/// isolates exactly that loop (cluster scan + membership probe) so a
/// regression to division-based wrapping shows up here first.
fn bench_dah_probe(c: &mut Criterion) {
    use saga_graph::hash_tables::RobinHoodEdgeTable;

    const SOURCES: u32 = 2_000;
    const DEGREE: u32 = 8; // below the DAH low→high threshold
    let mut table = RobinHoodEdgeTable::new();
    for src in 0..SOURCES {
        for dst in 0..DEGREE {
            table.insert(src, SOURCES + dst, 1.0);
        }
    }

    let mut group = c.benchmark_group("dah_probe");
    group.sample_size(10);
    group.bench_function("cluster_scan", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for src in 0..SOURCES {
                table.for_each_neighbor(src, &mut |nb, _| sum += nb as u64);
            }
            sum
        });
    });
    group.bench_function("find_hit", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for src in 0..SOURCES {
                for dst in 0..DEGREE {
                    if table.find(src, SOURCES + dst).is_some() {
                        hits += 1;
                    }
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_cache_replay(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    let batch = short_tail_batch();
    let graph = build_graph(DataStructureKind::Dah, NODES, true, pool.threads());
    let trace = trace_phase(&pool, || {
        graph.update_batch(&batch, &pool);
    });
    let mut group = c.benchmark_group("cache_sim");
    group.sample_size(10);
    group.bench_function("replay_update_trace", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(HierarchyConfig::paper_scaled(16), 4);
            h.replay(&trace)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_update,
    bench_update_ingest,
    bench_traversal,
    bench_compute,
    bench_dah_probe,
    bench_cache_replay
);
criterion_main!(benches);
