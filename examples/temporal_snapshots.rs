//! Temporal analytics over historical graph versions — the multi-snapshot
//! model the paper lists as future work (footnote 1, citing Chronos and
//! LLAMA).
//!
//! A stream of citation-like edges is ingested into a
//! [`SnapshotStore`]; afterwards, *any* historical version can be queried.
//! Here we ask a temporal question no single-snapshot system can answer:
//! how did the reachable set and the shortest-path distance from a seed
//! vertex evolve batch by batch?
//!
//! [`SnapshotStore`]: saga_bench_suite::graph::snapshots::SnapshotStore
//!
//! ```text
//! cargo run --release --example temporal_snapshots
//! ```

use saga_bench_suite::graph::snapshots::SnapshotStore;
use saga_bench_suite::graph::GraphTopology;
use saga_bench_suite::prelude::*;

fn reachable_and_eccentricity(view: &dyn GraphTopology, root: u32) -> (usize, u32) {
    let n = view.capacity();
    let mut depth = vec![u32::MAX; n];
    depth[root as usize] = 0;
    let mut frontier = vec![root];
    while let Some(v) = frontier.pop() {
        let d = depth[v as usize];
        view.for_each_out_neighbor(v, &mut |nb, _| {
            if depth[nb as usize] > d + 1 {
                depth[nb as usize] = d + 1;
                frontier.push(nb);
            }
        });
    }
    let reached = depth.iter().filter(|&&d| d != u32::MAX).count();
    let ecc = depth.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
    (reached, ecc)
}

fn main() {
    let profile = DatasetProfile::rmat().scaled(5_000, 60_000);
    let stream = profile.generate(17);
    let root = stream.edges[0].src;

    let mut store = SnapshotStore::new(stream.num_nodes, stream.directed);
    for batch in stream.batches(6_000) {
        store.ingest_batch(batch);
    }
    println!(
        "ingested {} batches into a versioned store ({} vertices)\n",
        store.num_snapshots(),
        store.capacity()
    );
    println!("version  edges    reachable from {root}  eccentricity");
    println!("----------------------------------------------------");
    for version in 0..store.num_snapshots() {
        let view = store.snapshot(version);
        let (reached, ecc) = reachable_and_eccentricity(&view, root);
        println!(
            "{version:>7}  {:>7}  {reached:>19}  {ecc:>12}",
            view.num_edges()
        );
    }
    println!("\nEvery row queries an immutable historical version; the");
    println!("single-snapshot benchmark can only answer the last one.");
}
