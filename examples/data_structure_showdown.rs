//! Data-structure showdown: the paper's primary software finding, live.
//!
//! §V-B: *"The best data structure for a streaming graph depends on the
//! per-batch degree distribution of the graph"* — short-tailed streams
//! update fastest on the shared adjacency list (AS), heavy-tailed streams
//! on degree-aware hashing (DAH). This example streams one short-tailed
//! and one heavy-tailed dataset through all four structures and prints the
//! update-latency flip.
//!
//! ```text
//! cargo run --release --example data_structure_showdown
//! ```

use saga_bench_suite::graph::build_graph;
use saga_bench_suite::prelude::*;
use saga_bench_suite::stream::batch_stats::{classify, degree_stats};
use saga_bench_suite::utils::parallel::ThreadPool;
use saga_bench_suite::utils::timer::Stopwatch;

fn main() {
    let pool = ThreadPool::with_available_parallelism();
    let datasets = [
        DatasetProfile::livejournal().scaled(30_000, 300_000),
        DatasetProfile::talk().scaled(30_000, 300_000),
    ];
    for profile in datasets {
        let stream = profile.generate(5);
        let batch_size = 30_000;
        let first: Vec<_> = stream.edges[..batch_size].to_vec();
        let stats = degree_stats(&first, stream.num_nodes);
        println!(
            "\n{}: per-batch max in/out degree = {}/{} -> {}",
            stream.name,
            stats.max_in,
            stats.max_out,
            classify(&stats, batch_size)
        );
        println!("  structure  total update latency");
        let mut results: Vec<(String, f64)> = Vec::new();
        for kind in DataStructureKind::ALL {
            let graph = build_graph(kind, stream.num_nodes, stream.directed, pool.threads());
            let sw = Stopwatch::start();
            for batch in stream.batches(batch_size) {
                graph.update_batch(batch, &pool);
            }
            let secs = sw.elapsed_secs();
            results.push((kind.abbrev().to_string(), secs));
            println!("  {:<9}  {:>8.1} ms", kind.abbrev(), secs * 1e3);
        }
        let best = results
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!("  -> fastest: {}", best.0);
    }
    println!("\nExpected flip (paper §V-B): AS wins the short-tailed stream,");
    println!("DAH wins the heavy-tailed one, with AS collapsing under the");
    println!("hub's lock contention.");
}
