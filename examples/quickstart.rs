//! Quickstart: stream a synthetic social graph through SAGA-Bench.
//!
//! Builds a LiveJournal-like edge stream, ingests it batch-by-batch into a
//! degree-aware-hashing (DAH) structure, and runs incremental PageRank
//! after every batch — printing the per-batch update/compute latency
//! breakdown that is the paper's core metric (Eq. 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use saga_bench_suite::prelude::*;

fn main() {
    // A scaled-down LiveJournal-like dataset: directed, short-tailed.
    let profile = DatasetProfile::livejournal().scaled(20_000, 200_000);
    let stream = profile.generate(42);
    println!(
        "dataset: {} ({} vertices, {} edges, directed: {})",
        stream.name,
        stream.num_nodes,
        stream.edges.len(),
        stream.directed
    );

    let mut driver = StreamDriver::builder(DataStructureKind::Dah, stream.num_nodes)
        .algorithm(AlgorithmKind::PageRank)
        .compute_model(ComputeModelKind::Incremental)
        .batch_size(20_000)
        .build();

    let outcome = driver.run(&stream);

    println!("\nbatch  update(ms)  compute(ms)  total(ms)  update%  inserted");
    println!("----------------------------------------------------------------");
    for b in &outcome.batches {
        println!(
            "{:>5}  {:>10.2}  {:>11.2}  {:>9.2}  {:>6.1}%  {:>8}",
            b.index,
            b.update_seconds * 1e3,
            b.compute_seconds * 1e3,
            b.batch_seconds() * 1e3,
            b.update_fraction() * 100.0,
            b.inserted,
        );
    }
    println!(
        "\ntotal: {} unique edges in {:.1} ms",
        outcome.total_edges,
        outcome.total_seconds() * 1e3
    );

    // Show the top-ranked vertices from the final PageRank snapshot.
    if let saga_bench_suite::algorithms::VertexValues::F64(ranks) = outcome.final_values {
        let mut indexed: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("\ntop 5 vertices by PageRank:");
        for (v, rank) in indexed.into_iter().take(5) {
            println!("  vertex {v:>6}: {rank:.6}");
        }
    }
}
