//! Social-network analysis on an evolving graph — the paper's motivating
//! scenario (§I): as friendship edges stream in, track in real time how
//! the community structure consolidates (connected components) and who the
//! influential users are (PageRank), without recomputing from scratch.
//!
//! Demonstrates running two concurrent analytics over the same stream and
//! reading results at the end of each over-time stage (P1/P2/P3).
//!
//! ```text
//! cargo run --release --example social_network_analysis
//! ```

use saga_bench_suite::algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    VertexValues,
};
use saga_bench_suite::graph::build_graph;
use saga_bench_suite::prelude::*;
use saga_bench_suite::utils::parallel::ThreadPool;

fn component_count(values: &VertexValues, active: &[bool]) -> usize {
    let VertexValues::U32(labels) = values else {
        unreachable!("CC labels are u32")
    };
    let mut roots: Vec<u32> = labels
        .iter()
        .enumerate()
        .filter(|&(v, _)| active[v])
        .map(|(_, &l)| l)
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

fn main() {
    // An Orkut-like undirected friendship network.
    let profile = DatasetProfile::orkut().scaled(10_000, 120_000);
    let stream = profile.generate(7);
    let pool = ThreadPool::with_available_parallelism();
    let n = stream.num_nodes;

    let graph = build_graph(DataStructureKind::AdjacencyShared, n, stream.directed, pool.threads());
    let mut communities = AlgorithmState::new(
        AlgorithmKind::Cc,
        ComputeModelKind::Incremental,
        n,
        AlgorithmParams::default(),
    );
    let mut influence = AlgorithmState::new(
        AlgorithmKind::PageRank,
        ComputeModelKind::Incremental,
        n,
        AlgorithmParams::default(),
    );
    let mut cc_tracker = AffectedTracker::new(n);
    let mut pr_tracker = AffectedTracker::new(n);
    let mut active = vec![false; n];

    let batch_size = 12_000;
    let total_batches = stream.edges.len().div_ceil(batch_size);
    println!("streaming {} friendship edges in {total_batches} batches\n", stream.edges.len());
    println!("batch  stage  members  communities  top influencer (rank)");
    println!("---------------------------------------------------------");
    for (i, batch) in stream.batches(batch_size).enumerate() {
        graph.update_batch(batch, &pool);
        for e in batch {
            active[e.src as usize] = true;
            active[e.dst as usize] = true;
        }
        let cc_impact = cc_tracker.process_batch(graph.as_ref(), batch, false, &pool);
        communities.perform_alg(graph.as_ref(), &cc_impact.affected, &cc_impact.new_vertices, &pool);
        let pr_impact = pr_tracker.process_batch(graph.as_ref(), batch, true, &pool);
        influence.perform_alg(graph.as_ref(), &pr_impact.affected, &pr_impact.new_vertices, &pool);

        let members = active.iter().filter(|&&a| a).count();
        let comms = component_count(&communities.values(), &active);
        let (top, rank) = match influence.values() {
            VertexValues::F64(ranks) => {
                let (v, r) = ranks
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap();
                (v, *r)
            }
            _ => unreachable!(),
        };
        let stage = match 3 * i / total_batches {
            0 => "P1",
            1 => "P2",
            _ => "P3",
        };
        println!("{i:>5}  {stage}  {members:>7}  {comms:>11}  user {top} ({rank:.5})");
    }
    println!("\nAs edges accumulate, communities merge (count drops toward one");
    println!("giant component) while PageRank keeps singling out hub users —");
    println!("all computed incrementally on the freshly ingested batches.");
}
