//! Sliding-window analytics using the deletion extension.
//!
//! The paper's benchmark streams insertions into an ever-growing graph.
//! Many deployments instead analyze a *window* of recent activity (e.g.
//! "interactions in the last hour"): as each batch arrives, the batch that
//! fell out of the window is **deleted**. All four SAGA-Bench structures
//! support batched deletion in this suite (see `DeletableGraph`); the
//! incremental compute model's monotone state does not survive deletions,
//! so the window is analyzed with the from-scratch model — exactly the
//! trade-off the streaming-graph literature (KickStarter et al.) explores.
//!
//! ```text
//! cargo run --release --example sliding_window
//! ```

use saga_bench_suite::algorithms::{
    AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind, VertexValues,
};
use saga_bench_suite::graph::{build_deletable_graph, DataStructureKind, Edge};
use saga_bench_suite::prelude::*;
use saga_bench_suite::utils::parallel::ThreadPool;
use saga_bench_suite::utils::timer::Stopwatch;

const WINDOW_BATCHES: usize = 4;

fn main() {
    let profile = DatasetProfile::orkut().scaled(8_000, 120_000);
    let stream = profile.generate(23);
    let pool = ThreadPool::with_available_parallelism();
    let n = stream.num_nodes;
    let batch_size = 10_000;

    let graph = build_deletable_graph(
        DataStructureKind::Stinger,
        n,
        stream.directed,
        pool.threads(),
    );
    let mut cc = AlgorithmState::new(
        AlgorithmKind::Cc,
        ComputeModelKind::FromScratch,
        n,
        AlgorithmParams::default(),
    );

    let batches: Vec<&[Edge]> = stream.batches(batch_size).collect();
    println!(
        "sliding window of {WINDOW_BATCHES} batches x {batch_size} edges over {} batches\n",
        batches.len()
    );
    println!("step  window edges  evicted  components in window  latency(ms)");
    println!("----------------------------------------------------------------");
    for (i, batch) in batches.iter().enumerate() {
        let sw = Stopwatch::start();
        graph.update_batch(batch, &pool);
        let evicted = if i >= WINDOW_BATCHES {
            let old = batches[i - WINDOW_BATCHES];
            graph.delete_batch(old, &pool).removed
        } else {
            0
        };
        cc.perform_alg(graph.as_ref(), &[], &[], &pool);
        let latency = sw.elapsed_secs();

        // Count components among vertices present in the window.
        let VertexValues::U32(labels) = cc.values() else {
            unreachable!("CC labels are u32")
        };
        let mut in_window = vec![false; n];
        for v in 0..n as u32 {
            if graph.out_degree(v) > 0 || graph.in_degree(v) > 0 {
                in_window[v as usize] = true;
            }
        }
        let mut roots: Vec<u32> = labels
            .iter()
            .enumerate()
            .filter(|&(v, _)| in_window[v])
            .map(|(_, &l)| l)
            .collect();
        roots.sort_unstable();
        roots.dedup();
        println!(
            "{i:>4}  {:>12}  {evicted:>7}  {:>20}  {:>11.2}",
            graph.num_edges(),
            roots.len(),
            latency * 1e3
        );
    }
    println!("\nThe edge count plateaus once the window fills: every arriving");
    println!("batch is balanced by the eviction of the expired one.");
}
