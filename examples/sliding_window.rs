//! Sliding-window analytics on the driver's deletion path.
//!
//! The paper's benchmark streams insertions into an ever-growing graph.
//! Many deployments instead analyze a *window* of recent activity (e.g.
//! "interactions in the last hour"): as each batch arrives, the batch that
//! fell out of the window is **deleted** in the same step.
//! [`EdgeStream::into_sliding_window`] rewrites an insert-only stream into
//! exactly that op-stream, and the [`StreamDriver`] routes its deletion
//! half through `DeletableGraph::delete_batch` — so the window runs on the
//! *incremental* compute model, with the KickStarter-style repair pass
//! restoring soundness after each eviction (and the from-scratch fallback
//! catching oversized cascades). The final check recomputes the last
//! window from scratch and asserts the incremental labels match.
//!
//! ```text
//! cargo run --release --example sliding_window
//! ```
//!
//! [`EdgeStream::into_sliding_window`]: saga_bench_suite::stream::EdgeStream::into_sliding_window
//! [`StreamDriver`]: saga_bench_suite::core::driver::StreamDriver

use saga_bench_suite::algorithms::{AlgorithmKind, ComputeModelKind};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::graph::DataStructureKind;
use saga_bench_suite::prelude::*;

const WINDOW_BATCHES: usize = 4;

fn main() {
    let profile = DatasetProfile::orkut().scaled(8_000, 120_000);
    let batch_size = 10_000;
    let stream = profile.generate(23).into_sliding_window(WINDOW_BATCHES, batch_size);
    let n = stream.num_nodes;

    let run = |model| {
        let mut driver = StreamDriver::builder(DataStructureKind::Stinger, n)
            .algorithm(AlgorithmKind::Cc)
            .compute_model(model)
            .build();
        driver.run(&stream)
    };

    let outcome = run(ComputeModelKind::Incremental);
    println!(
        "sliding window of {WINDOW_BATCHES} batches x {batch_size} edges, {} steps\n",
        outcome.batches.len()
    );
    println!("step  batch ops  evicted  repaired  fallback  latency(ms)");
    println!("----------------------------------------------------------");
    for b in &outcome.batches {
        println!(
            "{:>4}  {:>9}  {:>7}  {:>8}  {:>8}  {:>11.2}",
            b.index,
            b.batch_len,
            b.removed,
            b.compute.repaired,
            if b.compute.fs_fallback { "FS" } else { "-" },
            b.batch_seconds() * 1e3
        );
    }

    let evicted: usize = outcome.batches.iter().map(|b| b.removed).sum();
    let inserted: usize = outcome.batches.iter().map(|b| b.inserted).sum();
    println!(
        "\n{} edges in the final window ({} inserted - {} evicted)",
        outcome.total_edges,
        inserted,
        evicted
    );

    // Soundness check: replay the same op-stream under the from-scratch
    // model. Deletion-sound incremental labels must agree exactly.
    let oracle = run(ComputeModelKind::FromScratch);
    assert_eq!(
        outcome.final_values, oracle.final_values,
        "incremental window labels diverged from the from-scratch oracle"
    );
    println!("final CC labels match a from-scratch recomputation of the window");
}
