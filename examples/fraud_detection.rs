//! Real-time fraud detection on a transaction stream — one of the paper's
//! headline applications (§I cites real-time financial fraud detection).
//!
//! Transactions form a heavy-tailed directed graph (a few accounts fan out
//! enormously, like the wiki-Talk profile). A known-bad account is
//! watched; after every ingested batch, incremental SSSP maintains the
//! "transaction distance" from that account, and any account that comes
//! within the alert radius is flagged — with latency that depends only on
//! the affected region, not the graph size.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use saga_bench_suite::algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    VertexValues,
};
use saga_bench_suite::graph::build_graph;
use saga_bench_suite::prelude::*;
use saga_bench_suite::utils::parallel::ThreadPool;
use saga_bench_suite::utils::timer::Stopwatch;

const ALERT_RADIUS: f32 = 6.0; // maximum suspicious transaction distance

fn main() {
    // A Talk-like stream: heavy-tailed out-degree (hub spray pattern).
    let profile = DatasetProfile::talk().scaled(15_000, 90_000);
    let stream = profile.generate(99);
    let pool = ThreadPool::with_available_parallelism();
    let n = stream.num_nodes;

    // Watch the stream's most prolific account: the first edge's source is
    // guaranteed present; in this profile it is very likely the hub.
    let suspect = stream.edges[0].src;
    println!("watching account {suspect} (alert radius: {ALERT_RADIUS} hops of weighted distance)\n");

    // DAH is the paper's best structure for heavy-tailed streams (§V-B).
    let graph = build_graph(DataStructureKind::Dah, n, stream.directed, pool.threads());
    let mut distances = AlgorithmState::new(
        AlgorithmKind::Sssp,
        ComputeModelKind::Incremental,
        n,
        AlgorithmParams {
            root: suspect,
            ..AlgorithmParams::default()
        },
    );
    let mut tracker = AffectedTracker::new(n);
    let mut already_flagged = vec![false; n];
    already_flagged[suspect as usize] = true;

    println!("batch  latency(ms)  newly flagged accounts");
    println!("-------------------------------------------");
    for (i, batch) in stream.batches(stream.suggested_batch_size).enumerate() {
        let sw = Stopwatch::start();
        graph.update_batch(batch, &pool);
        let impact = tracker.process_batch(graph.as_ref(), batch, false, &pool);
        distances.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        let latency = sw.elapsed_secs();

        let VertexValues::F32(dist) = distances.values() else {
            unreachable!("SSSP distances are f32")
        };
        let mut newly: Vec<u32> = dist
            .iter()
            .enumerate()
            .filter(|&(v, &d)| d <= ALERT_RADIUS && !already_flagged[v])
            .map(|(v, _)| v as u32)
            .collect();
        for &v in &newly {
            already_flagged[v as usize] = true;
        }
        newly.truncate(6);
        let flagged_total = already_flagged.iter().filter(|&&f| f).count() - 1;
        println!(
            "{i:>5}  {:>11.2}  +{} (total {flagged_total}){}",
            latency * 1e3,
            newly.len(),
            if newly.is_empty() {
                String::new()
            } else {
                format!("  e.g. {newly:?}")
            }
        );
    }
    println!("\nEvery batch the alert set expands only through the incremental");
    println!("frontier — the compute phase touches the affected subgraph, not");
    println!("all {n} accounts.");
}
