//! Disabled-path overhead bound for the trace layer.
//!
//! The instrumentation threaded through the driver, pipeline, and thread
//! pool must be free when `SAGA_TRACE` is off: a disabled `span!` is one
//! relaxed atomic load plus a no-op guard drop. There is no
//! uninstrumented build to diff against at runtime, so the bound is
//! established compositionally: measure the per-call cost of the disabled
//! hot path directly, count the events an identical *enabled* run emits,
//! and assert that (events × per-call cost) stays under 2% of the
//! measured disabled wall time of the same pipelined run. The numbers are
//! written to `results/BENCH_trace_overhead.json`; the timing assertion
//! honors `SAGA_SKIP_SHAPE_TIMING=1` for noisy machines.

use saga_bench_suite::core::pipelined::run_pipelined;
use saga_bench_suite::core::report::write_results_file;
use saga_bench_suite::prelude::*;
use saga_bench_suite::utils::timer::Stopwatch;

/// Tiny Wiki-like stream: a few batches, enough for the pipeline to
/// overlap, quick enough for a debug-build test run.
fn stream() -> saga_bench_suite::stream::EdgeStream {
    DatasetProfile::wiki().scaled(800, 8_000).with_batch_target(4).generate(7)
}

fn run_once(stream: &saga_bench_suite::stream::EdgeStream) -> f64 {
    let sw = Stopwatch::start();
    let outcome = run_pipelined(
        stream,
        DataStructureKind::Dah,
        AlgorithmKind::PageRank,
        stream.suggested_batch_size,
        1,
        1,
    );
    std::hint::black_box(outcome.final_values);
    sw.elapsed_secs()
}

#[test]
fn disabled_tracing_overhead_stays_under_two_percent() {
    let stream = stream();
    saga_trace::set_enabled(false);
    saga_trace::clear();

    // Per-call cost of the disabled hot path: guard construction checks
    // the enable flag, guard drop re-checks it; the arg expression is
    // never evaluated.
    const CALLS: u64 = 1_000_000;
    let sw = Stopwatch::start();
    for i in 0..CALLS {
        let _probe = saga_trace::span!("overhead-probe", iter = i);
    }
    let per_call_ns = sw.elapsed_secs() * 1e9 / CALLS as f64;

    // Disabled wall time of the pipelined run (best of 3 after a warmup,
    // to shed allocator and page-cache cold starts).
    run_once(&stream);
    let disabled_secs = (0..3).map(|_| run_once(&stream)).fold(f64::INFINITY, f64::min);

    // Event volume of the identical run with tracing on: every span is
    // two ring writes (B + E), instants and completes one each — count
    // the captured events rather than guessing site coverage.
    saga_trace::set_enabled(true);
    run_once(&stream);
    saga_trace::set_enabled(false);
    let events = saga_trace::drain().len() as u64 + saga_trace::dropped_events();
    saga_trace::clear();
    assert!(events > 0, "the enabled run must capture events");

    let overhead_secs = events as f64 * per_call_ns / 1e9;
    let overhead_frac = overhead_secs / disabled_secs;
    let report = format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"per_call_ns\": {per_call_ns:.3},\n  \
         \"events_per_run\": {events},\n  \"disabled_wall_secs\": {disabled_secs:.6},\n  \
         \"estimated_disabled_overhead_secs\": {overhead_secs:.9},\n  \
         \"estimated_disabled_overhead_fraction\": {overhead_frac:.6},\n  \"bound\": 0.02\n}}\n"
    );
    if let Err(e) = write_results_file("BENCH_trace_overhead.json", &report) {
        eprintln!("[trace_overhead] could not write results file: {e}");
    }

    if std::env::var("SAGA_SKIP_SHAPE_TIMING").as_deref() == Ok("1") {
        eprintln!("[trace_overhead] SAGA_SKIP_SHAPE_TIMING=1: skipping timing assertion");
        return;
    }
    assert!(
        overhead_frac < 0.02,
        "disabled tracing must add < 2%: {events} events x {per_call_ns:.1} ns/call = \
         {overhead_secs:.6}s against a {disabled_secs:.6}s run ({:.3}%)",
        overhead_frac * 100.0
    );
}
