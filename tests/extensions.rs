//! Integration tests for the extension features working together: the
//! SNAP loader feeding the driver, historical snapshots agreeing with live
//! structures, pipelining agreeing with interleaving, and deletions
//! composing with analytics.

use saga_bench_suite::algorithms::{AlgorithmKind, ComputeModelKind, VertexValues};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::core::pipelined::run_pipelined;
use saga_bench_suite::graph::snapshots::SnapshotStore;
use saga_bench_suite::graph::{build_deletable_graph, DataStructureKind, GraphTopology};
use saga_bench_suite::stream::loader::load_snap_text;
use saga_bench_suite::stream::profiles::DatasetProfile;
use saga_bench_suite::utils::parallel::ThreadPool;

#[test]
fn loader_to_driver_end_to_end() {
    // Write a small SNAP-format file, load it, stream it.
    let dir = std::env::temp_dir().join("saga-ext-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mini.txt");
    let mut body = String::from("# test graph\n");
    for i in 0..200u32 {
        body.push_str(&format!("{}\t{}\n", i * 7 % 100 + 1000, i * 13 % 100 + 1000));
    }
    std::fs::write(&path, &body).unwrap();

    let stream = load_snap_text(&path, true, 9).unwrap();
    assert!(stream.num_nodes <= 100);
    assert_eq!(stream.edges.len(), 200);

    let mut driver = StreamDriver::builder(DataStructureKind::Dah, stream.num_nodes)
        .algorithm(AlgorithmKind::Cc)
        .compute_model(ComputeModelKind::Incremental)
        .batch_size(50)
        .threads(2)
        .build();
    let outcome = driver.run(&stream);
    assert_eq!(outcome.batches.len(), 4);
    assert!(outcome.total_edges > 0);
}

#[test]
fn snapshot_store_latest_matches_live_structure() {
    let profile = DatasetProfile::livejournal().scaled(300, 2_000);
    let stream = profile.generate(31);
    let pool = ThreadPool::new(2);

    let live = build_deletable_graph(
        DataStructureKind::AdjacencyShared,
        stream.num_nodes,
        stream.directed,
        pool.threads(),
    );
    let mut store = SnapshotStore::new(stream.num_nodes, stream.directed);
    for batch in stream.batches(500) {
        live.update_batch(batch, &pool);
        store.ingest_batch(batch);
    }
    let latest = store.latest().expect("batches ingested");
    assert_eq!(latest.num_edges(), live.num_edges());
    for v in 0..stream.num_nodes as u32 {
        let mut a = latest.out_neighbors(v);
        let mut b = live.out_neighbors(v);
        a.sort_by_key(|&(n, _)| n);
        b.sort_by_key(|&(n, _)| n);
        assert_eq!(a, b, "vertex {v}");
    }
}

#[test]
fn pipelined_and_interleaved_agree_on_every_algorithm() {
    let stream = DatasetProfile::wiki().scaled(300, 2_400).generate(13);
    for alg in [AlgorithmKind::Bfs, AlgorithmKind::Cc, AlgorithmKind::Sswp] {
        let pipelined = run_pipelined(
            &stream,
            DataStructureKind::AdjacencyChunked,
            alg,
            800,
            2,
            2,
        );
        let mut driver =
            StreamDriver::builder(DataStructureKind::AdjacencyChunked, stream.num_nodes)
                .algorithm(alg)
                .compute_model(ComputeModelKind::Incremental)
                .batch_size(800)
                .threads(4)
                .build();
        let interleaved = driver.run(&stream);
        assert_eq!(
            pipelined.final_values, interleaved.final_values,
            "{alg} differs between execution models"
        );
    }
}

#[test]
fn deletion_then_fs_compute_reflects_the_smaller_graph() {
    let pool = ThreadPool::new(2);
    let stream = DatasetProfile::talk().scaled(400, 3_000).generate(3);
    let g = build_deletable_graph(
        DataStructureKind::Stinger,
        stream.num_nodes,
        stream.directed,
        pool.threads(),
    );
    g.update_batch(&stream.edges, &pool);
    let before = g.num_edges();

    // Delete half the stream; FS connected components must still run and
    // see the reduced graph.
    let half = &stream.edges[..stream.edges.len() / 2];
    let stats = g.delete_batch(half, &pool);
    assert!(stats.removed > 0);
    assert_eq!(g.num_edges(), before - stats.removed);

    let mut cc = saga_bench_suite::algorithms::AlgorithmState::new(
        AlgorithmKind::Cc,
        ComputeModelKind::FromScratch,
        stream.num_nodes,
        saga_bench_suite::algorithms::AlgorithmParams::default(),
    );
    cc.perform_alg(g.as_ref(), &[], &[], &pool);
    let VertexValues::U32(labels) = cc.values() else {
        panic!("CC labels are u32")
    };
    // Sanity: labels are valid component representatives.
    assert!(labels.iter().enumerate().all(|(v, &l)| l as usize <= v || l == labels[l as usize]));
}
