//! Edge-case integration tests: degenerate streams, tiny universes, and
//! configuration corners the main pipeline tests do not reach.

use saga_bench_suite::algorithms::{AlgorithmKind, VertexValues};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::core::pipelined::run_pipelined;
use saga_bench_suite::graph::{build_graph, DataStructureKind, Edge};
use saga_bench_suite::stream::EdgeStream;
use saga_bench_suite::utils::parallel::ThreadPool;

fn stream_of(edges: Vec<Edge>, num_nodes: usize, directed: bool) -> EdgeStream {
    EdgeStream {
        name: "edge-case".into(),
        num_nodes,
        directed,
        edges,
        ops: Vec::new(),
        boundaries: Vec::new(),
        suggested_batch_size: 2,
    }
}

#[test]
fn empty_stream_produces_no_batches() {
    let stream = stream_of(vec![], 4, true);
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, 4)
        .algorithm(AlgorithmKind::Bfs)
        .threads(2)
        .build();
    let outcome = driver.run(&stream);
    assert!(outcome.batches.is_empty());
    assert_eq!(outcome.total_edges, 0);
}

#[test]
fn single_edge_stream_works_on_every_structure() {
    for ds in DataStructureKind::ALL {
        let stream = stream_of(vec![Edge::new(0, 1, 1.0)], 2, true);
        let mut driver = StreamDriver::builder(ds, 2)
            .algorithm(AlgorithmKind::Bfs)
            .threads(2)
            .build();
        let outcome = driver.run(&stream);
        assert_eq!(outcome.batches.len(), 1);
        assert_eq!(outcome.total_edges, 1);
        match outcome.final_values {
            VertexValues::U32(d) => assert_eq!(d, vec![0, 1]),
            _ => panic!("BFS yields depths"),
        }
    }
}

#[test]
fn batch_larger_than_stream_is_one_batch() {
    let stream = stream_of(
        (0..10).map(|i| Edge::new(i, (i + 1) % 10, 1.0)).collect(),
        10,
        true,
    );
    let mut driver = StreamDriver::builder(DataStructureKind::Stinger, 10)
        .algorithm(AlgorithmKind::Cc)
        .batch_size(1_000_000)
        .threads(2)
        .build();
    let outcome = driver.run(&stream);
    assert_eq!(outcome.batches.len(), 1);
    // A directed 10-cycle is one weak component.
    match outcome.final_values {
        VertexValues::U32(labels) => assert!(labels.iter().all(|&l| l == 0)),
        _ => panic!("CC yields labels"),
    }
}

#[test]
fn self_loops_only_stream() {
    for directed in [true, false] {
        let stream = stream_of(
            (0..6).map(|i| Edge::new(i, i, 2.0)).collect(),
            6,
            directed,
        );
        for ds in DataStructureKind::ALL {
            let mut driver = StreamDriver::builder(ds, 6)
                .algorithm(AlgorithmKind::Mc)
                .threads(2)
                .build();
            let outcome = driver.run(&stream);
            assert_eq!(outcome.total_edges, 6, "{ds:?} directed={directed}");
            match outcome.final_values {
                VertexValues::U32(v) => {
                    assert_eq!(v, (0..6u32).collect::<Vec<_>>(), "MC fixpoint is the id")
                }
                _ => panic!("MC yields u32"),
            }
        }
    }
}

#[test]
fn threads_exceeding_vertices_is_fine() {
    let pool = ThreadPool::new(8);
    let g = build_graph(DataStructureKind::Dah, 3, true, pool.threads());
    let stats = g.update_batch(&[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)], &pool);
    assert_eq!(stats.inserted, 2);
    assert_eq!(g.out_degree(1), 1);
}

#[test]
fn root_override_controls_search_source() {
    let stream = stream_of(
        vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)],
        4,
        true,
    );
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, 4)
        .algorithm(AlgorithmKind::Bfs)
        .root(2)
        .batch_size(10)
        .threads(1)
        .build();
    let outcome = driver.run(&stream);
    match outcome.final_values {
        VertexValues::U32(d) => {
            assert_eq!(d[2], 0);
            assert_eq!(d[3], 1);
            assert_eq!(d[0], u32::MAX, "0 unreachable from root 2");
        }
        _ => panic!("BFS yields depths"),
    }
}

#[test]
fn pipelined_single_batch_stream() {
    let stream = stream_of(vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)], 3, true);
    let outcome = run_pipelined(
        &stream,
        DataStructureKind::AdjacencyShared,
        AlgorithmKind::Bfs,
        100,
        1,
        1,
    );
    assert_eq!(outcome.batches.len(), 1);
    match outcome.final_values {
        VertexValues::U32(d) => assert_eq!(d, vec![0, 1, 2]),
        _ => panic!("BFS yields depths"),
    }
}

#[test]
fn duplicate_only_batches_after_first() {
    let pool = ThreadPool::new(2);
    for ds in DataStructureKind::ALL {
        let g = build_graph(ds, 4, true, pool.threads());
        let batch: Vec<Edge> = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)];
        g.update_batch(&batch, &pool);
        let stats = g.update_batch(&batch, &pool);
        assert_eq!(stats.inserted, 0, "{ds:?}");
        assert_eq!(stats.duplicates, 2, "{ds:?}");
        assert_eq!(g.num_edges(), 2, "{ds:?}");
    }
}
