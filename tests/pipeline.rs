//! End-to-end integration tests across all crates: generate a dataset
//! profile, stream it through the driver on each data structure, and check
//! the paper's qualitative claims at test scale.

use saga_bench_suite::algorithms::{AlgorithmKind, ComputeModelKind, VertexValues};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::graph::DataStructureKind;
use saga_bench_suite::stream::batch_stats::{table4_row, TailClass};
use saga_bench_suite::stream::profiles::DatasetProfile;

fn run(
    stream: &saga_bench_suite::stream::EdgeStream,
    ds: DataStructureKind,
    alg: AlgorithmKind,
    cm: ComputeModelKind,
) -> saga_bench_suite::core::StreamOutcome {
    let mut driver = StreamDriver::builder(ds, stream.num_nodes)
        .algorithm(alg)
        .compute_model(cm)
        .threads(4)
        .build();
    driver.run(stream)
}

#[test]
fn every_profile_streams_on_every_structure() {
    for profile in DatasetProfile::all() {
        let p = profile.clone().scaled(600, 4_000).with_batch_target(4);
        let stream = p.generate(3);
        let mut edge_counts = Vec::new();
        for ds in DataStructureKind::ALL {
            let outcome = run(&stream, ds, AlgorithmKind::Cc, ComputeModelKind::Incremental);
            assert_eq!(outcome.batches.len(), 4, "{} on {ds:?}", p.name());
            edge_counts.push(outcome.total_edges);
        }
        // All four structures must agree on the deduplicated edge count.
        assert!(
            edge_counts.windows(2).all(|w| w[0] == w[1]),
            "{}: structures disagree on edge count: {edge_counts:?}",
            p.name()
        );
    }
}

#[test]
fn fs_equals_inc_end_to_end_for_monotone_algorithms() {
    let stream = DatasetProfile::wiki().scaled(500, 4_000).generate(11);
    for alg in [
        AlgorithmKind::Bfs,
        AlgorithmKind::Cc,
        AlgorithmKind::Mc,
        AlgorithmKind::Sssp,
        AlgorithmKind::Sswp,
    ] {
        let fs = run(&stream, DataStructureKind::Stinger, alg, ComputeModelKind::FromScratch);
        let inc = run(&stream, DataStructureKind::Stinger, alg, ComputeModelKind::Incremental);
        assert_eq!(fs.final_values, inc.final_values, "{alg} diverged");
    }
}

#[test]
fn pagerank_inc_tracks_fs_closely() {
    let stream = DatasetProfile::livejournal().scaled(400, 3_000).generate(5);
    let fs = run(
        &stream,
        DataStructureKind::AdjacencyShared,
        AlgorithmKind::PageRank,
        ComputeModelKind::FromScratch,
    );
    let inc = run(
        &stream,
        DataStructureKind::AdjacencyShared,
        AlgorithmKind::PageRank,
        ComputeModelKind::Incremental,
    );
    let (VertexValues::F64(a), VertexValues::F64(b)) = (&fs.final_values, &inc.final_values)
    else {
        panic!("PageRank values are f64");
    };
    let l1: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
    assert!(l1 < 1e-2, "PR INC drifted from FS: L1 = {l1}");
}

#[test]
fn table4_tail_classification_shape() {
    // The qualitative Table IV claim at default node universes.
    for (profile, expected) in [
        (DatasetProfile::livejournal(), TailClass::Short),
        (DatasetProfile::orkut(), TailClass::Short),
        (DatasetProfile::rmat(), TailClass::Short),
        (DatasetProfile::wiki(), TailClass::Heavy),
        (DatasetProfile::talk(), TailClass::Heavy),
    ] {
        let p = profile.clone().scaled(profile.num_nodes(), 40_000);
        let stream = p.generate(17);
        let row = table4_row(&stream.edges, stream.num_nodes, 10_000);
        assert_eq!(row.tail, expected, "{}", p.name());
    }
}

#[test]
fn inc_compute_beats_fs_compute_on_a_growing_graph() {
    // Fig. 7's shape at test scale: by the final stage, incremental
    // PageRank compute should be substantially cheaper than from-scratch.
    let stream = DatasetProfile::rmat().scaled(20_000, 120_000).generate(21);
    let fs = run(
        &stream,
        DataStructureKind::AdjacencyShared,
        AlgorithmKind::PageRank,
        ComputeModelKind::FromScratch,
    );
    let inc = run(
        &stream,
        DataStructureKind::AdjacencyShared,
        AlgorithmKind::PageRank,
        ComputeModelKind::Incremental,
    );
    let last_third = |o: &saga_bench_suite::core::StreamOutcome| -> f64 {
        let n = o.batches.len();
        o.batches[2 * n / 3..]
            .iter()
            .map(|b| b.compute_seconds)
            .sum()
    };
    let fs_compute = last_third(&fs);
    let inc_compute = last_third(&inc);
    assert!(
        inc_compute < fs_compute,
        "INC compute ({inc_compute:.4}s) should beat FS ({fs_compute:.4}s) at P3"
    );
}

#[test]
fn update_is_a_large_latency_fraction_for_small_datasets() {
    // Fig. 8's shape: on small datasets the bottleneck shifts to update.
    let stream = DatasetProfile::talk().scaled(2_000, 20_000).generate(33);
    let outcome = run(
        &stream,
        DataStructureKind::Dah,
        AlgorithmKind::Bfs,
        ComputeModelKind::Incremental,
    );
    let update: f64 = outcome.batches.iter().map(|b| b.update_seconds).sum();
    let total: f64 = outcome.batches.iter().map(|b| b.batch_seconds()).sum();
    assert!(
        update / total > 0.25,
        "update fraction {:.2} unexpectedly small",
        update / total
    );
}
