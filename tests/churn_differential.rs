//! Differential correctness harness for deletion-sound streaming.
//!
//! After every batch of a churn stream (inserts threaded with deletions of
//! previously inserted edges), the incremental model's values must match a
//! from-scratch oracle evaluated on an independent CSR snapshot of the
//! materialized graph — across all four data structures and all six
//! algorithms. Dedicated scenarios force the KickStarter-style repair pass
//! to cascade and force the cascade-size threshold to trip into the
//! from-scratch fallback, so both halves of the deletion path are
//! exercised deterministically.

use saga_bench_suite::algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    VertexValues,
};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::graph::csr::Csr;
use saga_bench_suite::graph::{build_deletable_graph, DataStructureKind, Edge};
use saga_bench_suite::stream::profiles::DatasetProfile;
use saga_bench_suite::stream::{EdgeOp, EdgeStream};
use saga_bench_suite::utils::parallel::ThreadPool;

// Scaled down under Miri so the interpreter finishes in reasonable time.
#[cfg(not(miri))]
const NODES: usize = 200;
#[cfg(miri)]
const NODES: usize = 32;
#[cfg(not(miri))]
const STREAM_EDGES: usize = 1_600;
#[cfg(miri)]
const STREAM_EDGES: usize = 96;
#[cfg(not(miri))]
const BATCH: usize = 400;
#[cfg(miri)]
const BATCH: usize = 48;

/// Churn fraction: one deletion threaded per four inserts on average.
const CHURN: f64 = 0.25;

fn churn_stream(seed: u64) -> EdgeStream {
    DatasetProfile::livejournal()
        .scaled(NODES, STREAM_EDGES)
        .with_churn(CHURN)
        .generate(seed)
}

fn params() -> AlgorithmParams {
    AlgorithmParams {
        root: 7,
        pr_epsilon: 1e-11,
        pr_fs_tolerance: 1e-11,
        ..AlgorithmParams::default()
    }
}

fn assert_close(
    kind: AlgorithmKind,
    ds: DataStructureKind,
    batch: usize,
    fs: &VertexValues,
    inc: &VertexValues,
) {
    match (fs, inc) {
        (VertexValues::U32(a), VertexValues::U32(b)) => {
            assert_eq!(a, b, "{kind} diverged on {ds:?} at batch {batch}");
        }
        (VertexValues::F32(a), VertexValues::F32(b)) => {
            for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x == y || (x - y).abs() < 1e-4,
                    "{kind} diverged on {ds:?} at batch {batch}, vertex {v}: FS {x} INC {y}"
                );
            }
        }
        (VertexValues::F64(a), VertexValues::F64(b)) => {
            for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-6,
                    "{kind} diverged on {ds:?} at batch {batch}, vertex {v}: FS {x} INC {y}"
                );
            }
        }
        _ => panic!("value type mismatch"),
    }
}

/// The core check: stream churn batches into `ds`, run INC after each, and
/// compare against a fresh FS oracle on a CSR snapshot of the live graph.
fn run_churn_differential(kind: AlgorithmKind, ds: DataStructureKind, directed: bool) {
    let pool = ThreadPool::new(4);
    let stream = churn_stream(0xC0FFEE ^ kind as u64);
    assert!(stream.has_deletions(), "churn stream must carry deletions");
    let n = NODES.max(stream.num_nodes);
    let graph = build_deletable_graph(ds, n, directed, pool.threads());
    let mut inc = AlgorithmState::new(kind, ComputeModelKind::Incremental, n, params());
    let mut tracker = AffectedTracker::new(n);
    let mut saw_repair = false;
    for (i, batch) in stream.op_batches(BATCH).enumerate() {
        let (inserts, deletes) = batch.split();
        graph.update_batch(&inserts, &pool);
        if !deletes.is_empty() {
            graph.delete_batch(&deletes, &pool);
        }
        let impact = tracker.process_mixed_batch(
            graph.as_ref(),
            &inserts,
            &deletes,
            inc.affects_source_neighborhood(),
            inc.symmetric_scope(),
            &pool,
        );
        let out = inc.perform_alg_with_deletions(
            graph.as_ref(),
            &impact.affected,
            &impact.new_vertices,
            &deletes,
            &pool,
        );
        saw_repair |= out.repaired > 0;

        // Independent oracle: from-scratch on a CSR snapshot of whatever
        // the structure materialized, with fresh algorithm state.
        let snapshot = Csr::from_graph(graph.as_ref());
        let mut fs = AlgorithmState::new(kind, ComputeModelKind::FromScratch, n, params());
        fs.perform_alg(&snapshot, &[], &[], &pool);
        assert_close(kind, ds, i, &fs.values(), &inc.values());
    }
    // The repair counter only moves for algorithms that repair; PR opts
    // out (re-pull is already sound) and MC's max-label rarely travels
    // over a deleted edge on this dense stream, so don't require it there.
    let _ = saw_repair;
}

macro_rules! churn_tests {
    ($($name:ident: $kind:expr, $ds:expr;)*) => {
        $(
            #[test]
            fn $name() {
                run_churn_differential($kind, $ds, true);
            }
        )*
    };
}

churn_tests! {
    churn_bfs_as: AlgorithmKind::Bfs, DataStructureKind::AdjacencyShared;
    churn_bfs_ac: AlgorithmKind::Bfs, DataStructureKind::AdjacencyChunked;
    churn_bfs_stinger: AlgorithmKind::Bfs, DataStructureKind::Stinger;
    churn_bfs_dah: AlgorithmKind::Bfs, DataStructureKind::Dah;
    churn_cc_as: AlgorithmKind::Cc, DataStructureKind::AdjacencyShared;
    churn_cc_ac: AlgorithmKind::Cc, DataStructureKind::AdjacencyChunked;
    churn_cc_stinger: AlgorithmKind::Cc, DataStructureKind::Stinger;
    churn_cc_dah: AlgorithmKind::Cc, DataStructureKind::Dah;
    churn_mc_as: AlgorithmKind::Mc, DataStructureKind::AdjacencyShared;
    churn_mc_ac: AlgorithmKind::Mc, DataStructureKind::AdjacencyChunked;
    churn_mc_stinger: AlgorithmKind::Mc, DataStructureKind::Stinger;
    churn_mc_dah: AlgorithmKind::Mc, DataStructureKind::Dah;
    churn_pr_as: AlgorithmKind::PageRank, DataStructureKind::AdjacencyShared;
    churn_pr_ac: AlgorithmKind::PageRank, DataStructureKind::AdjacencyChunked;
    churn_pr_stinger: AlgorithmKind::PageRank, DataStructureKind::Stinger;
    churn_pr_dah: AlgorithmKind::PageRank, DataStructureKind::Dah;
    churn_sssp_as: AlgorithmKind::Sssp, DataStructureKind::AdjacencyShared;
    churn_sssp_ac: AlgorithmKind::Sssp, DataStructureKind::AdjacencyChunked;
    churn_sssp_stinger: AlgorithmKind::Sssp, DataStructureKind::Stinger;
    churn_sssp_dah: AlgorithmKind::Sssp, DataStructureKind::Dah;
    churn_sswp_as: AlgorithmKind::Sswp, DataStructureKind::AdjacencyShared;
    churn_sswp_ac: AlgorithmKind::Sswp, DataStructureKind::AdjacencyChunked;
    churn_sswp_stinger: AlgorithmKind::Sswp, DataStructureKind::Stinger;
    churn_sswp_dah: AlgorithmKind::Sswp, DataStructureKind::Dah;
}

#[test]
fn undirected_churn_differential() {
    for kind in AlgorithmKind::ALL {
        run_churn_differential(kind, DataStructureKind::AdjacencyShared, false);
        run_churn_differential(kind, DataStructureKind::Dah, false);
    }
}

/// Two-batch stream: batch 0 inserts a directed path 0→1→…→k plus one
/// malformed deletion target; batch 1 cuts the path near the root.
fn path_cut_stream(k: usize) -> EdgeStream {
    let mut edges: Vec<Edge> = (0..k as u32).map(|v| Edge::new(v, v + 1, 1.0)).collect();
    let mut ops = vec![EdgeOp::Insert; edges.len()];
    let insert_end = edges.len();
    // Batch 1: delete 1→2 (cascades to every vertex past it) and one edge
    // that was never inserted (counts missing, repairs nothing).
    edges.push(Edge::new(1, 2, 1.0));
    edges.push(Edge::new(0, k as u32, 1.0));
    ops.extend([EdgeOp::Delete, EdgeOp::Delete]);
    let total = edges.len();
    EdgeStream {
        name: "path-cut".into(),
        num_nodes: k + 1,
        directed: true,
        edges,
        ops,
        boundaries: vec![insert_end, total],
        suggested_batch_size: insert_end,
    }
}

/// A deletion near the root of a path forces the repair pass to cascade:
/// far more vertices are reset than the two deletion endpoints.
#[test]
fn repair_cascade_resets_the_downstream_suffix() {
    const K: usize = 40;
    let stream = path_cut_stream(K);
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, K + 1)
        .algorithm(AlgorithmKind::Bfs)
        .compute_model(ComputeModelKind::Incremental)
        .root(0)
        .params(AlgorithmParams {
            root: 0,
            // The cut cascades through ~95% of the graph; give the repair
            // pass the whole capacity so it cannot trip the FS fallback.
            repair_cascade_fraction: 1.0,
            ..AlgorithmParams::default()
        })
        .threads(2)
        .build();
    let outcome = driver.run(&stream);
    assert_eq!(outcome.batches.len(), 2);
    let cut = &outcome.batches[1];
    assert_eq!((cut.removed, cut.missing), (1, 1));
    assert!(
        cut.compute.repaired >= K - 2,
        "cutting 1→2 must cascade past the endpoints: repaired {}",
        cut.compute.repaired
    );
    assert!(!cut.compute.fs_fallback);
    let VertexValues::U32(depths) = outcome.final_values else {
        panic!("BFS depths are u32")
    };
    assert_eq!(depths[0], 0);
    assert_eq!(depths[1], 1);
    // Everything past the cut is unreachable again.
    assert!(depths[2..=K].iter().all(|&d| d == u32::MAX));
}

/// With a tiny cascade budget the same cut overflows the threshold and the
/// driver falls back to from-scratch recomputation — values stay correct.
#[test]
fn cascade_overflow_trips_the_fs_fallback() {
    const K: usize = 40;
    let stream = path_cut_stream(K);
    let mut driver = StreamDriver::builder(DataStructureKind::Stinger, K + 1)
        .algorithm(AlgorithmKind::Bfs)
        .compute_model(ComputeModelKind::Incremental)
        .root(0)
        .params(AlgorithmParams {
            root: 0,
            repair_cascade_fraction: 1e-9, // limit clamps to 1 vertex
            ..AlgorithmParams::default()
        })
        .threads(2)
        .build();
    let outcome = driver.run(&stream);
    let cut = &outcome.batches[1];
    assert!(cut.compute.fs_fallback, "cascade of ~{K} must overflow a 1-vertex budget");
    assert_eq!(cut.compute.repaired, 0);
    let VertexValues::U32(depths) = outcome.final_values else {
        panic!("BFS depths are u32")
    };
    assert_eq!(depths[1], 1);
    assert!(depths[2..=K].iter().all(|&d| d == u32::MAX));
}

/// End-to-end accounting: the driver's removed/missing tallies must agree
/// with what the structures report, on every structure.
#[test]
fn driver_reports_removed_and_missing_per_batch() {
    for ds in DataStructureKind::ALL {
        let stream = path_cut_stream(12);
        let mut driver = StreamDriver::builder(ds, 13)
            .algorithm(AlgorithmKind::Cc)
            .compute_model(ComputeModelKind::Incremental)
            .threads(2)
            .build();
        let outcome = driver.run(&stream);
        assert_eq!(outcome.batches[0].removed, 0, "{ds:?}");
        assert_eq!(outcome.batches[0].missing, 0, "{ds:?}");
        assert_eq!(outcome.batches[1].removed, 1, "{ds:?}");
        assert_eq!(outcome.batches[1].missing, 1, "{ds:?}");
        assert_eq!(outcome.total_edges, 11, "{ds:?}");
    }
}
