//! Integration tests for the architecture-simulation path: driver +
//! probe + cache replay + bandwidth model working together.

use saga_bench_suite::algorithms::{AlgorithmKind, ComputeModelKind};
use saga_bench_suite::core::driver::{ArchSimConfig, StreamDriver};
use saga_bench_suite::graph::DataStructureKind;
use saga_bench_suite::stream::profiles::DatasetProfile;

#[test]
fn arch_records_are_internally_consistent() {
    let stream = DatasetProfile::livejournal().scaled(800, 6_000).generate(7);
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, stream.num_nodes)
        .algorithm(AlgorithmKind::PageRank)
        .compute_model(ComputeModelKind::Incremental)
        .batch_size(2_000)
        .threads(2)
        .arch_sim(ArchSimConfig::default())
        .build();
    let outcome = driver.run(&stream);
    assert_eq!(outcome.batches.len(), 3);
    for b in &outcome.batches {
        let arch = b.arch.as_ref().expect("arch sim enabled");
        for (phase, report) in [("update", &arch.update), ("compute", &arch.compute)] {
            // Hit/miss bookkeeping must balance level by level.
            assert_eq!(
                report.accesses,
                report.l1_hits + report.l2_lookups,
                "{phase}: L1 accounting"
            );
            assert_eq!(
                report.l2_lookups,
                report.l2_hits + report.llc_lookups,
                "{phase}: L2 accounting"
            );
            assert_eq!(
                report.llc_lookups,
                report.llc_hits + report.dram_lines,
                "{phase}: LLC accounting"
            );
            assert!(report.remote_lines <= report.dram_lines);
            let per_thread: u64 = report.threads.iter().map(|t| t.accesses).sum();
            assert_eq!(per_thread, report.accesses, "{phase}: thread accounting");
            assert!(report.l2_hit_ratio() >= 0.0 && report.l2_hit_ratio() <= 1.0);
            assert!(report.llc_hit_ratio() >= 0.0 && report.llc_hit_ratio() <= 1.0);
        }
        assert!(arch.update_bw.imbalance >= 1.0 - 1e-9);
        assert!(arch.compute_bw.imbalance >= 1.0 - 1e-9);
    }
}

#[test]
fn compute_phase_reuses_update_phase_lines() {
    // §VI-C: "the compute phase can reuse the edge data freshly brought
    // into LLC by the update phase". With the shared persistent hierarchy,
    // the compute phase's overall hit fraction should comfortably beat a
    // cold-cache replay's, because the update phase just touched the same
    // adjacency data.
    let stream = DatasetProfile::livejournal().scaled(1_000, 8_000).generate(3);
    let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, stream.num_nodes)
        .algorithm(AlgorithmKind::PageRank)
        .compute_model(ComputeModelKind::Incremental)
        .batch_size(4_000)
        .threads(2)
        .arch_sim(ArchSimConfig::default())
        .build();
    let outcome = driver.run(&stream);
    let later = &outcome.batches[1]; // warmed hierarchy
    let arch = later.arch.as_ref().unwrap();
    let compute_hits =
        arch.compute.l1_hits + arch.compute.l2_hits + arch.compute.llc_hits;
    let hit_fraction = compute_hits as f64 / arch.compute.accesses as f64;
    assert!(
        hit_fraction > 0.5,
        "compute phase should mostly hit a warmed hierarchy, got {hit_fraction:.2}"
    );
}

#[test]
fn hub_only_update_is_more_imbalanced_than_uniform() {
    // §VI-B: the update of heavy-tailed graphs on DAH suffers workload
    // imbalance — the chunk owning the hub does most of the work. Use
    // synthetic extremes so the property is deterministic: a batch whose
    // edges all leave one vertex vs a uniformly spread batch.
    use saga_bench_suite::stream::EdgeStream;
    let imbalance_of = |edges: Vec<saga_bench_suite::graph::Edge>| {
        let stream = EdgeStream {
            name: "synthetic".into(),
            num_nodes: 4_000,
            directed: true,
            edges,
            ops: Vec::new(),
            boundaries: Vec::new(),
            suggested_batch_size: 8_000,
        };
        let mut driver = StreamDriver::builder(DataStructureKind::Dah, stream.num_nodes)
            .algorithm(AlgorithmKind::Bfs)
            .compute_model(ComputeModelKind::Incremental)
            .batch_size(8_000)
            .threads(4)
            .arch_sim(ArchSimConfig::default())
            .build();
        let outcome = driver.run(&stream);
        outcome.batches[0].arch.as_ref().unwrap().update_bw.imbalance
    };
    let hub_only: Vec<_> = (0..8_000u32)
        .map(|i| saga_bench_suite::graph::Edge::new(0, 1 + i % 3_999, 1.0))
        .collect();
    let uniform: Vec<_> = (0..8_000u32)
        .map(|i| saga_bench_suite::graph::Edge::new(i % 4_000, (i * 7 + 1) % 4_000, 1.0))
        .collect();
    let heavy = imbalance_of(hub_only);
    let balanced = imbalance_of(uniform);
    assert!(
        heavy > balanced + 0.3 && heavy > 1.5,
        "hub-only update imbalance ({heavy:.2}) should clearly exceed uniform ({balanced:.2})"
    );
}
