#!/usr/bin/env bash
# Regenerates every table and figure of the paper (see DESIGN.md's
# experiment index) and the ablations, writing outputs under results/.
#
# Scales are chosen for a small machine; raise SAGA_SCALE / SAGA_REPEATS
# for higher-fidelity runs. Usage:
#
#   ./scripts/run_experiments.sh [quick|full]
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-quick}"
if [ "$MODE" = "full" ]; then
    SW_SCALE=1.0; SW_REPEATS=3; ARCH_SCALE=0.6; ABL_SCALE=1.0
else
    SW_SCALE=0.35; SW_REPEATS=2; ARCH_SCALE=0.4; ABL_SCALE=0.5
fi
THREADS="${SAGA_THREADS:-4}"

run() {
    local name="$1"; shift
    echo "=== $name ==="
    "$@" 2>&1 | tail -40
}

export SAGA_THREADS="$THREADS"

# Dataset inventory + tails: cheap, full default scale.
SAGA_SCALE=1.0 run table2 cargo run -q -p saga-bench --release --bin table2
SAGA_SCALE=1.0 run table4 cargo run -q -p saga-bench --release --bin table4

# Software-level characterization: Table III + Figs. 6-8 in one sweep.
SAGA_SCALE=$SW_SCALE SAGA_REPEATS=$SW_REPEATS \
    run software_suite cargo run -q -p saga-bench --release --bin software_suite

# Heavy-tailed datasets at full profile scale: the Fig. 6b flip needs the
# full hub work (see EXPERIMENTS.md), and Wiki/Talk are cheap.
SAGA_RESULTS_DIR=results/heavy SAGA_DATASETS=Wiki,Talk SAGA_SCALE=1.0 SAGA_REPEATS=2 \
    run software_suite_heavy cargo run -q -p saga-bench --release --bin software_suite

# The AS <-> DAH crossover as the per-batch tail grows (Fig. 6b's flip).
SAGA_SCALE=1.0 SAGA_REPEATS=2 run tail_sweep cargo run -q -p saga-bench --release --bin tail_sweep

# Architecture-level: Figs. 9b/9c/10 in one traced pass; Fig. 9a sweep.
SAGA_SCALE=$ARCH_SCALE SAGA_ALGS=bfs,cc,pr \
    run arch_suite cargo run -q -p saga-bench --release --bin arch_suite
SAGA_SCALE=$ARCH_SCALE SAGA_ALGS=bfs,pr SAGA_PANEL=a \
    run fig9a cargo run -q -p saga-bench --release --bin fig9

# Ablations.
SAGA_SCALE=$ABL_SCALE SAGA_REPEATS=2 \
    run ablation_locking cargo run -q -p saga-bench --release --bin ablation_locking
SAGA_SCALE=$ABL_SCALE run ablation_blocksize cargo run -q -p saga-bench --release --bin ablation_blocksize
SAGA_SCALE=$ABL_SCALE run ablation_dah_threshold cargo run -q -p saga-bench --release --bin ablation_dah_threshold
SAGA_SCALE=$ABL_SCALE run ablation_epsilon cargo run -q -p saga-bench --release --bin ablation_epsilon

# Extension: pipelined execution.
SAGA_SCALE=$ABL_SCALE run pipelined cargo run -q -p saga-bench --release --bin pipelined

echo "All experiment outputs written to results/."
