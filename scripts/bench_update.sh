#!/usr/bin/env bash
# Update-phase ingestion benchmark: partitioned vs rescan routing on the
# chunk-owned structures. Writes results/BENCH_update.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -p saga-bench --release --bin bench_update "$@"
